"""Tests for the trace-calibrated kernel performance model."""

import pytest

from repro.core.perf_model import KernelPerfModel, parse_gemm_shape
from repro.hardware.cluster import ClusterSpec
from repro.kernels.gemm import gemm_time_us


class TestGemmShapeParsing:
    def test_parse_from_emulated_kernel_name(self):
        assert parse_gemm_shape("sm90_xmma_gemm_bf16_attn_qkv_m4096_n9216_k6144") == \
            (4096, 9216, 6144)

    def test_parse_missing_shape_returns_none(self):
        assert parse_gemm_shape("flash::attention") is None


@pytest.fixture(scope="module")
def calibrated(small_graph, small_parallel):
    cluster = ClusterSpec.for_world_size(small_parallel.world_size)
    return KernelPerfModel.calibrate(small_graph, cluster)


@pytest.fixture(scope="module")
def calibrated_large_cluster(calibrated):
    """The same calibration re-targeted onto a 4-node cluster."""
    return KernelPerfModel(cluster=ClusterSpec(num_gpus=32, gpus_per_node=8),
                           dtype_bytes=calibrated.dtype_bytes,
                           calibration=dict(calibrated.calibration))


class TestCalibration:
    def test_gemm_calibration_close_to_one(self, calibrated):
        # The emulator and the perf model share the analytical form, so the
        # fitted calibration factor should sit near 1 (jitter aside).
        assert calibrated.calibration_factor("gemm") == pytest.approx(1.0, abs=0.15)

    def test_communication_classes_calibrated(self, calibrated):
        assert any(key.startswith("comm:tp:") for key in calibrated.calibration)
        assert any(key.startswith("comm:pp:") for key in calibrated.calibration)

    def test_unknown_class_falls_back_to_default(self, calibrated):
        assert calibrated.calibration_factor("something_else") == 1.0

    def test_unknown_comm_group_falls_back_to_same_kind(self, calibrated):
        factor = calibrated.calibration_factor("comm:ep:all_reduce")
        assert 0.5 < factor < 2.0


class TestPredictions:
    def test_predict_gemm_matches_analytical_times_calibration(self, calibrated):
        analytical = gemm_time_us(1024, 1024, 1024, 2, calibrated.cluster.gpu)
        predicted = calibrated.predict_gemm_us(1024, 1024, 1024)
        assert predicted == pytest.approx(analytical * calibrated.calibration_factor("gemm"))

    def test_predict_collective_larger_group_not_cheaper(self, calibrated_large_cluster):
        small = calibrated_large_cluster.predict_collective_us("all_reduce", 1e8, (0, 1),
                                                                group="tp")
        large = calibrated_large_cluster.predict_collective_us("all_reduce", 1e8, (0, 8, 16, 24),
                                                               group="dp")
        assert large > small

    def test_predict_memory_bound_scales_with_bytes(self, calibrated):
        assert calibrated.predict_memory_bound_us("elementwise", 2e8) > \
            calibrated.predict_memory_bound_us("elementwise", 1e8)


class TestRatioScaling:
    def test_scale_gemm_identity(self, calibrated):
        assert calibrated.scale_gemm(100.0, (512, 512, 512), (512, 512, 512)) == \
            pytest.approx(100.0)

    def test_scale_gemm_larger_shape_takes_longer(self, calibrated):
        assert calibrated.scale_gemm(100.0, (1024, 1024, 1024), (1024, 2048, 1024)) > 150.0

    def test_scale_collective_identity(self, calibrated):
        assert calibrated.scale_collective(50.0, "all_reduce", 1e8, (0, 1), 1e8, (0, 1)) == \
            pytest.approx(50.0)

    def test_scale_collective_to_inter_node_group_costs_more(self, calibrated_large_cluster):
        scaled = calibrated_large_cluster.scale_collective(50.0, "all_reduce", 1e8, (0, 2, 4, 6),
                                                           1e8, (0, 2, 8, 10))
        assert scaled > 50.0

    def test_scale_collective_point_to_point(self, calibrated):
        scaled = calibrated.scale_collective(20.0, "send", 1e7, (0, 1), 2e7, (0, 1))
        assert scaled > 20.0

    def test_scale_memory_bound_preserves_overhead(self, calibrated):
        overhead = calibrated.cluster.gpu.kernel_fixed_overhead_us
        scaled = calibrated.scale_memory_bound(overhead + 10.0, 1e6, 2e6)
        assert scaled == pytest.approx(overhead + 20.0)

    def test_scale_memory_bound_zero_old_bytes_is_identity(self, calibrated):
        assert calibrated.scale_memory_bound(42.0, 0.0, 1e6) == 42.0

    def test_scale_flops_bound(self, calibrated):
        overhead = calibrated.cluster.gpu.kernel_fixed_overhead_us
        scaled = calibrated.scale_flops_bound(overhead + 100.0, 1e12, 2.5e12)
        assert scaled == pytest.approx(overhead + 250.0)
