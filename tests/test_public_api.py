"""Public-surface snapshot tests.

These lock the exported names of ``repro``, ``repro.api``,
``repro.sweep`` and ``repro.observability``: CI's lint job runs this
module, so accidentally widening or shrinking the public API fails fast
and visibly.  When a change is intentional, update the snapshots here in
the same commit.
"""

import repro
import repro.api
import repro.observability
import repro.service
import repro.sweep

REPRO_ALL = [
    "ArrivalConfig",
    "InferenceConfig",
    "PredictError",
    "Prediction",
    "ServingMetrics",
    "ServingTarget",
    "Study",
    "StudyError",
    "SweepResult",
    "SweepSpec",
    "Target",
    "__version__",
    "parse_arrival",
    "parse_target",
    "predict",
    "replay",
    "run_sweep",
    "sweep",
]

REPRO_API_ALL = [
    "KIND_ARCHITECTURE",
    "KIND_BASELINE",
    "KIND_HARDWARE",
    "KIND_PARALLELISM",
    "KIND_SERVING",
    "PredictError",
    "Prediction",
    "Study",
    "StudyError",
    "Target",
    "WhatIfBuilder",
    "derive_graph",
    "parse_target",
    "predict",
]

REPRO_OBSERVABILITY_ALL = [
    "HistogramSummary",
    "MetricsRegistry",
    "NOOP_SPAN",
    "PipelineProfile",
    "SpanRecord",
    "active_profile",
    "coerce_bundle",
    "count",
    "empty_report",
    "export_timeline",
    "gauge",
    "last_profile",
    "observe",
    "pipeline_profile_json",
    "profile",
    "record_span",
    "report",
    "serving_request_events",
    "start_profiling",
    "stop_profiling",
    "timeline_json",
    "trace_span",
    "tracing_enabled",
    "validate_chrome_trace",
]

REPRO_SERVICE_ALL = [
    "JobRecord",
    "JobStore",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServiceApp",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "SubmitRequest",
    "TraceRegistry",
    "Worker",
    "WorkerFleet",
    "bundle_from_json",
    "bundle_to_json",
    "deliver_webhook",
    "error_for_exception",
    "job_id_for",
    "predict_result_payload",
    "sweep_result_payload",
    "validate_result_payload",
]

REPRO_SWEEP_ALL = [
    "CacheStats",
    "ScenarioResult",
    "ScenarioSpec",
    "SweepCache",
    "SweepResult",
    "SweepSpec",
    "SweepSpecError",
    "WhatIfSpec",
    "format_pareto_table",
    "format_ranked_table",
    "format_report",
    "hash_json",
    "hash_trace_bundle",
    "pareto_frontier",
    "rank_results",
    "run_sweep",
    "sweep",
]


class TestSurfaceSnapshots:
    def test_repro_all(self):
        assert sorted(repro.__all__) == REPRO_ALL

    def test_repro_api_all(self):
        assert sorted(repro.api.__all__) == REPRO_API_ALL

    def test_repro_sweep_all(self):
        assert sorted(repro.sweep.__all__) == REPRO_SWEEP_ALL

    def test_repro_observability_all(self):
        assert sorted(repro.observability.__all__) == REPRO_OBSERVABILITY_ALL

    def test_repro_service_all(self):
        assert sorted(repro.service.__all__) == REPRO_SERVICE_ALL


class TestSurfaceResolves:
    def test_every_exported_name_exists(self):
        for module in (repro, repro.api, repro.sweep, repro.observability,
                       repro.service):
            for name in module.__all__:
                assert getattr(module, name) is not None, f"{module.__name__}.{name}"

    def test_facade_names_are_shared_objects(self):
        # The top-level re-exports must be the same objects as the
        # subpackage definitions (no parallel copies to drift apart).
        assert repro.Study is repro.api.Study
        assert repro.PredictError is repro.api.PredictError
        assert repro.predict is repro.api.predict
        assert repro.SweepSpec is repro.sweep.SweepSpec

    def test_sweep_module_is_callable(self):
        assert callable(repro.sweep)
