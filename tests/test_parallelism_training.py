"""Unit tests for parallelism and training configurations."""

import pytest

from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


class TestParallelismConfig:
    def test_world_size(self):
        assert ParallelismConfig(8, 4, 8).world_size == 256

    def test_label_and_parse_roundtrip(self):
        for label in ("2x2x4", "8x4x16", "1x1x1"):
            assert ParallelismConfig.parse(label).label() == label

    def test_parse_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            ParallelismConfig.parse("2x2")
        with pytest.raises(ValueError):
            ParallelismConfig.parse("axbxc")

    def test_degrees_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelismConfig(0, 1, 1)

    def test_with_changes(self):
        base = ParallelismConfig(2, 2, 4)
        assert base.with_changes(data_parallel=16).label() == "2x2x16"
        assert base.with_changes(pipeline_parallel=8).label() == "2x8x4"
        assert base.label() == "2x2x4"

    def test_groups_consistency(self):
        parallel = ParallelismConfig(2, 4, 2)
        groups = parallel.groups()
        assert groups.world_size == parallel.world_size

    def test_validate_for_model(self):
        ParallelismConfig(1, 4, 1).validate_for_model(48)
        with pytest.raises(ValueError):
            ParallelismConfig(1, 64, 1).validate_for_model(48)


class TestTrainingConfig:
    def test_defaults_are_valid(self):
        config = TrainingConfig()
        assert config.dtype_bytes == 2
        assert config.tokens_per_replica() == config.micro_batch_size * \
            config.num_microbatches * config.sequence_length

    def test_global_batch_size(self):
        config = TrainingConfig(micro_batch_size=2, num_microbatches=8)
        assert config.global_batch_size(data_parallel=4) == 64

    def test_fp32_dtype_bytes(self):
        assert TrainingConfig(dtype="fp32").dtype_bytes == 4

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            TrainingConfig(micro_batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(dtype="int8")
        with pytest.raises(ValueError):
            TrainingConfig(gradient_bucket_layers=0)
        with pytest.raises(ValueError):
            TrainingConfig(sequence_length=-1)
