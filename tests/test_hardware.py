"""Unit tests for the hardware models (GPU, network, cluster, communicators)."""

import pytest

from repro.hardware.cluster import ClusterSpec, CommunicatorGroups
from repro.hardware.gpu import A100_SXM, H100_SXM, GPUSpec
from repro.hardware.network import NetworkSpec


class TestGPUSpec:
    def test_h100_headline_numbers(self):
        assert H100_SXM.sm_count == 132
        assert H100_SXM.bf16_tflops > A100_SXM.bf16_tflops

    def test_unit_conversions(self):
        gpu = GPUSpec(name="x", sm_count=1, bf16_tflops=1.0, fp32_tflops=1.0, memory_gb=1.0,
                      memory_bandwidth_gbps=1.0, nvlink_bandwidth_gbps=1.0)
        assert gpu.bf16_flops_per_us == pytest.approx(1e6)
        assert gpu.memory_bytes_per_us == pytest.approx(1e3)
        assert gpu.nvlink_bytes_per_us == pytest.approx(1e3)


class TestNetworkSpec:
    def test_intra_node_is_faster_than_inter_node(self):
        network = NetworkSpec()
        assert network.bandwidth_bytes_per_us(True) > network.bandwidth_bytes_per_us(False)
        assert network.latency_us(True) < network.latency_us(False)

    def test_efficiency_reduces_bandwidth(self):
        network = NetworkSpec(intra_node_bandwidth_gbps=100.0, intra_node_efficiency=0.5)
        assert network.bandwidth_bytes_per_us(True) == pytest.approx(50.0 * 1e9 / 1e6)


class TestClusterSpec:
    def test_node_mapping(self):
        cluster = ClusterSpec(num_gpus=32, gpus_per_node=8)
        assert cluster.num_nodes == 4
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.local_rank(9) == 1

    def test_partial_last_node_rounds_up(self):
        assert ClusterSpec(num_gpus=10, gpus_per_node=8).num_nodes == 2

    def test_is_intra_node(self):
        cluster = ClusterSpec(num_gpus=16, gpus_per_node=8)
        assert cluster.is_intra_node((0, 3, 7))
        assert not cluster.is_intra_node((0, 8))

    def test_rank_out_of_range_raises(self):
        cluster = ClusterSpec(num_gpus=8)
        with pytest.raises(ValueError):
            cluster.node_of(8)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=8, gpus_per_node=0)

    def test_for_world_size(self):
        cluster = ClusterSpec.for_world_size(512)
        assert cluster.num_gpus == 512
        assert cluster.num_nodes == 64


class TestCommunicatorGroups:
    def test_world_size(self):
        groups = CommunicatorGroups(2, 4, 8)
        assert groups.world_size == 64

    def test_coordinates_roundtrip(self):
        groups = CommunicatorGroups(2, 4, 8)
        for rank in range(groups.world_size):
            tp, dp, pp = groups.tp_index(rank), groups.dp_index(rank), groups.pp_index(rank)
            assert groups.rank_of(tp, dp, pp) == rank

    def test_tp_groups_are_contiguous(self):
        groups = CommunicatorGroups(4, 2, 2)
        assert groups.tp_group(0).ranks == (0, 1, 2, 3)
        assert groups.tp_group(5).ranks == (4, 5, 6, 7)

    def test_tp_group_is_intra_node_for_typical_configs(self):
        groups = CommunicatorGroups(8, 4, 4)
        cluster = ClusterSpec.for_world_size(groups.world_size)
        for rank in (0, 17, 100):
            assert cluster.is_intra_node(groups.tp_group(rank).ranks)

    def test_dp_group_strides_by_tp(self):
        groups = CommunicatorGroups(2, 2, 4)
        assert groups.dp_group(0).ranks == (0, 2, 4, 6)

    def test_pp_group_strides_by_tp_times_dp(self):
        groups = CommunicatorGroups(2, 2, 4)
        assert groups.pp_group(0).ranks == (0, 8)

    def test_pp_neighbors(self):
        groups = CommunicatorGroups(1, 4, 1)
        assert groups.pp_neighbors(0) == (None, 1)
        assert groups.pp_neighbors(2) == (1, 3)
        assert groups.pp_neighbors(3) == (2, None)

    def test_group_enumeration_counts(self):
        groups = CommunicatorGroups(2, 4, 8)
        assert len(groups.all_tp_groups()) == 4 * 8
        assert len(groups.all_dp_groups()) == 4 * 2
        assert len(groups.all_pp_groups()) == 8 * 2

    def test_every_rank_in_exactly_one_group_of_each_kind(self):
        groups = CommunicatorGroups(2, 2, 4)
        for collection in (groups.all_tp_groups(), groups.all_dp_groups(), groups.all_pp_groups()):
            seen = [rank for group in collection for rank in group.ranks]
            assert sorted(seen) == list(range(groups.world_size))

    def test_representative_ranks_one_per_stage(self):
        groups = CommunicatorGroups(2, 4, 2)
        representatives = groups.representative_ranks()
        assert len(representatives) == 4
        assert [groups.pp_index(rank) for rank in representatives] == [0, 1, 2, 3]

    def test_invalid_coordinates_raise(self):
        groups = CommunicatorGroups(2, 2, 2)
        with pytest.raises(ValueError):
            groups.rank_of(2, 0, 0)
        with pytest.raises(ValueError):
            groups.tp_index(99)

    def test_invalid_degrees_raise(self):
        with pytest.raises(ValueError):
            CommunicatorGroups(0, 1, 1)
