"""Unit tests for the hardware models (GPU, network, cluster, communicators)."""

import pytest

from repro.hardware.cluster import ClusterSpec, CommunicatorGroups
from repro.hardware.gpu import (
    A100_SXM,
    B200,
    H100_SXM,
    H200_SXM,
    GPUSpec,
    gpu_names,
    registry_gpu,
    resolve_gpu,
)
from repro.hardware.network import NetworkSpec


class TestGPUSpec:
    def test_h100_headline_numbers(self):
        assert H100_SXM.sm_count == 132
        assert H100_SXM.bf16_tflops > A100_SXM.bf16_tflops

    def test_unit_conversions(self):
        gpu = GPUSpec(name="x", sm_count=1, bf16_tflops=1.0, fp32_tflops=1.0, memory_gb=1.0,
                      memory_bandwidth_gbps=1.0, nvlink_bandwidth_gbps=1.0)
        assert gpu.bf16_flops_per_us == pytest.approx(1e6)
        assert gpu.memory_bytes_per_us == pytest.approx(1e3)
        assert gpu.nvlink_bytes_per_us == pytest.approx(1e3)


class TestNetworkSpec:
    def test_intra_node_is_faster_than_inter_node(self):
        network = NetworkSpec()
        assert network.bandwidth_bytes_per_us(True) > network.bandwidth_bytes_per_us(False)
        assert network.latency_us(True) < network.latency_us(False)

    def test_efficiency_reduces_bandwidth(self):
        network = NetworkSpec(intra_node_bandwidth_gbps=100.0, intra_node_efficiency=0.5)
        assert network.bandwidth_bytes_per_us(True) == pytest.approx(50.0 * 1e9 / 1e6)


class TestClusterSpec:
    def test_node_mapping(self):
        cluster = ClusterSpec(num_gpus=32, gpus_per_node=8)
        assert cluster.num_nodes == 4
        assert cluster.node_of(0) == 0
        assert cluster.node_of(8) == 1
        assert cluster.local_rank(9) == 1

    def test_partial_last_node_rounds_up(self):
        assert ClusterSpec(num_gpus=10, gpus_per_node=8).num_nodes == 2

    def test_is_intra_node(self):
        cluster = ClusterSpec(num_gpus=16, gpus_per_node=8)
        assert cluster.is_intra_node((0, 3, 7))
        assert not cluster.is_intra_node((0, 8))

    def test_rank_out_of_range_raises(self):
        cluster = ClusterSpec(num_gpus=8)
        with pytest.raises(ValueError):
            cluster.node_of(8)

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=0)
        with pytest.raises(ValueError):
            ClusterSpec(num_gpus=8, gpus_per_node=0)

    def test_for_world_size(self):
        cluster = ClusterSpec.for_world_size(512)
        assert cluster.num_gpus == 512
        assert cluster.num_nodes == 64


class TestCommunicatorGroups:
    def test_world_size(self):
        groups = CommunicatorGroups(2, 4, 8)
        assert groups.world_size == 64

    def test_coordinates_roundtrip(self):
        groups = CommunicatorGroups(2, 4, 8)
        for rank in range(groups.world_size):
            tp, dp, pp = groups.tp_index(rank), groups.dp_index(rank), groups.pp_index(rank)
            assert groups.rank_of(tp, dp, pp) == rank

    def test_tp_groups_are_contiguous(self):
        groups = CommunicatorGroups(4, 2, 2)
        assert groups.tp_group(0).ranks == (0, 1, 2, 3)
        assert groups.tp_group(5).ranks == (4, 5, 6, 7)

    def test_tp_group_is_intra_node_for_typical_configs(self):
        groups = CommunicatorGroups(8, 4, 4)
        cluster = ClusterSpec.for_world_size(groups.world_size)
        for rank in (0, 17, 100):
            assert cluster.is_intra_node(groups.tp_group(rank).ranks)

    def test_dp_group_strides_by_tp(self):
        groups = CommunicatorGroups(2, 2, 4)
        assert groups.dp_group(0).ranks == (0, 2, 4, 6)

    def test_pp_group_strides_by_tp_times_dp(self):
        groups = CommunicatorGroups(2, 2, 4)
        assert groups.pp_group(0).ranks == (0, 8)

    def test_pp_neighbors(self):
        groups = CommunicatorGroups(1, 4, 1)
        assert groups.pp_neighbors(0) == (None, 1)
        assert groups.pp_neighbors(2) == (1, 3)
        assert groups.pp_neighbors(3) == (2, None)

    def test_group_enumeration_counts(self):
        groups = CommunicatorGroups(2, 4, 8)
        assert len(groups.all_tp_groups()) == 4 * 8
        assert len(groups.all_dp_groups()) == 4 * 2
        assert len(groups.all_pp_groups()) == 8 * 2

    def test_every_rank_in_exactly_one_group_of_each_kind(self):
        groups = CommunicatorGroups(2, 2, 4)
        for collection in (groups.all_tp_groups(), groups.all_dp_groups(), groups.all_pp_groups()):
            seen = [rank for group in collection for rank in group.ranks]
            assert sorted(seen) == list(range(groups.world_size))

    def test_representative_ranks_one_per_stage(self):
        groups = CommunicatorGroups(2, 4, 2)
        representatives = groups.representative_ranks()
        assert len(representatives) == 4
        assert [groups.pp_index(rank) for rank in representatives] == [0, 1, 2, 3]

    def test_invalid_coordinates_raise(self):
        groups = CommunicatorGroups(2, 2, 2)
        with pytest.raises(ValueError):
            groups.rank_of(2, 0, 0)
        with pytest.raises(ValueError):
            groups.tp_index(99)

    def test_invalid_degrees_raise(self):
        with pytest.raises(ValueError):
            CommunicatorGroups(0, 1, 1)


class TestGPUSpecValidation:
    def _kwargs(self, **overrides):
        kwargs = dict(name="x", sm_count=1, bf16_tflops=1.0, fp32_tflops=1.0,
                      memory_gb=1.0, memory_bandwidth_gbps=1.0,
                      nvlink_bandwidth_gbps=1.0)
        kwargs.update(overrides)
        return kwargs

    @pytest.mark.parametrize("field", [
        "sm_count", "bf16_tflops", "fp32_tflops", "memory_gb",
        "memory_bandwidth_gbps", "nvlink_bandwidth_gbps",
    ])
    def test_non_positive_rates_raise(self, field):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            GPUSpec(**self._kwargs(**{field: 0}))
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            GPUSpec(**self._kwargs(**{field: -1.0}))

    @pytest.mark.parametrize("field", [
        "kernel_launch_overhead_us", "kernel_fixed_overhead_us",
    ])
    def test_negative_overheads_raise(self, field):
        with pytest.raises(ValueError, match=f"{field} must be non-negative"):
            GPUSpec(**self._kwargs(**{field: -0.5}))
        GPUSpec(**self._kwargs(**{field: 0.0}))  # zero overhead is allowed

    def test_empty_name_raises(self):
        with pytest.raises(ValueError, match="non-empty name"):
            GPUSpec(**self._kwargs(name="  "))


class TestGPURegistry:
    def test_registry_names(self):
        assert gpu_names() == ["A100-SXM", "B200", "H100-SXM", "H200-SXM"]

    def test_lookup_normalises_case_and_separators(self):
        assert registry_gpu("h200_sxm") is H200_SXM
        assert registry_gpu(" H200-SXM ") is H200_SXM
        assert registry_gpu("no-such-gpu") is None

    def test_h200_is_h100_with_hbm3e(self):
        # Same GH100 die: only the memory subsystem moves.
        assert H200_SXM.bf16_tflops == H100_SXM.bf16_tflops
        assert H200_SXM.sm_count == H100_SXM.sm_count
        assert H200_SXM.memory_bandwidth_gbps > H100_SXM.memory_bandwidth_gbps
        assert H200_SXM.memory_gb > H100_SXM.memory_gb

    def test_b200_headline_numbers(self):
        assert B200.bf16_tflops > H100_SXM.bf16_tflops
        assert B200.nvlink_bandwidth_gbps == 900.0


class TestGPUSpecJson:
    def test_round_trip(self):
        for spec in (H100_SXM, A100_SXM, H200_SXM, B200):
            assert GPUSpec.from_json(spec.to_json()) == spec

    def test_unknown_key_rejected(self):
        payload = H100_SXM.to_json()
        payload["tensor_cores"] = 4
        with pytest.raises(ValueError, match="unknown GPU spec keys"):
            GPUSpec.from_json(payload)

    def test_missing_key_rejected(self):
        payload = H100_SXM.to_json()
        del payload["memory_gb"]
        with pytest.raises(ValueError, match="missing required keys"):
            GPUSpec.from_json(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            GPUSpec.from_json(["H100-SXM"])

    def test_overheads_are_optional(self):
        payload = {key: value for key, value in H100_SXM.to_json().items()
                   if not key.startswith("kernel_")}
        spec = GPUSpec.from_json(payload)
        assert spec.kernel_launch_overhead_us == 6.0


class TestResolveGPU:
    def test_spec_passes_through(self):
        assert resolve_gpu(H200_SXM) is H200_SXM

    def test_registry_name(self):
        assert resolve_gpu("b200") is B200

    def test_json_file(self, tmp_path):
        import json
        path = tmp_path / "custom.json"
        payload = dict(H100_SXM.to_json(), name="H100-CUSTOM")
        path.write_text(json.dumps(payload))
        spec = resolve_gpu(str(path))
        assert spec.name == "H100-CUSTOM"

    def test_unknown_name_lists_known_specs(self):
        with pytest.raises(ValueError, match="known specs: A100-SXM, B200"):
            resolve_gpu("RTX-9090")

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read GPU spec file"):
            resolve_gpu(str(tmp_path / "missing.json"))

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            resolve_gpu(str(path))
