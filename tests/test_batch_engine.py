"""Differential testing of the batched simulation kernel.

The contract of :mod:`repro.core.batch` is *bit-identical* batching:
``run_batch`` on a ``(B, n_tasks)`` duration matrix must produce exactly
the start/end times of B independent
:meth:`~repro.core.engine.SimulationSession.run` calls — float equality,
no tolerance — whether the vectorized kernel or the sequential fallback
handled the batch.  Every test here asserts that differentially:

* hand-built edge cases (heap tie-breaks, collective alignment, sync
  drains, start-time offsets);
* hypothesis-generated random DAGs, reusing the strategies of
  ``tests/test_engine.py`` both raw (which mostly exercises the fallback,
  because random graphs rarely order their processors) and with
  per-processor chains added (which exercises the vectorized kernel the
  way builder-produced graphs do);
* the fallback itself: unordered processors fall back with a reason,
  deadlocking graphs raise the sequential scheduler's ``RuntimeError``;
* the what-if layer: a batched ``evaluate_scenarios`` call must equal the
  per-scenario ``evaluate_scenario`` loop result for result.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import (
    FALLBACK_ANCESTRY_OVERFLOW,
    FALLBACK_COLLECTIVE_DEPENDENCY,
    FALLBACK_SERVING_STREAM,
    FALLBACK_SYNC_CYCLE,
    FALLBACK_UNORDERED_TASKS,
    BatchSession,
    UnbatchableGraphError,
    compile_batch_plan,
)
from repro.core.engine import SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.tasks import DependencyType
from repro.core.whatif import (
    Scenario,
    evaluate_scenario,
    evaluate_scenarios,
    scenario_for,
)
from tests.conftest import hyp_max_examples
from tests.test_engine import cpu, gpu, random_graphs

#: Duration-scaling factors applied per task to build scenario matrices;
#: zero and identity are always included (they trigger heap tie-breaks
#: and baseline replays inside one batch).
_FACTORS = np.array([0.0, 0.25, 0.5, 1.0, 1.0, 2.0, 3.5])


def scenario_matrix(compiled, batch: int, seed: int = 0) -> np.ndarray:
    """A reproducible ``(batch, n_tasks)`` matrix of rescaled durations."""
    rng = np.random.default_rng(seed)
    factors = rng.choice(_FACTORS, size=(batch, compiled.n_tasks))
    return compiled.durations[None, :] * factors


def assert_batch_identical(graph: ExecutionGraph, matrix: np.ndarray,
                           start_time: float = 0.0) -> "BatchSession":
    """``run_batch`` must equal B independent sequential runs exactly."""
    compiled = compile_graph(graph)
    session = SimulationSession(compiled)
    run = session.run_batch(matrix, start_time=start_time)
    assert run.starts.shape == matrix.shape
    for row in range(len(matrix)):
        sequential = session.run(durations=matrix[row], start_time=start_time)
        assert np.array_equal(run.starts[row], sequential.starts), (
            f"scenario {row}: batched starts diverge from sequential")
        assert np.array_equal(run.ends[row], sequential.ends)
        assert run.iteration_times_us[row] == sequential.iteration_time_us
        assert run.scenario_time_us(row) == sequential.iteration_time_us
    return session.batch_session()


def add_processor_chains(graph: ExecutionGraph) -> ExecutionGraph:
    """Chain every processor's tasks with direct edges (builder invariant).

    Mirrors what :class:`~repro.core.graph_builder.GraphBuilder` does for
    CPU threads and CUDA streams, turning an arbitrary random DAG into one
    the batched kernel can prove statically schedulable.  Edges follow
    ascending task id, so they never create a cycle with the forward-only
    random dependencies.
    """
    by_processor: dict[tuple, list[int]] = {}
    for task in sorted(graph.tasks.values(), key=lambda t: t.task_id):
        by_processor.setdefault(task.processor, []).append(task.task_id)
    existing = {(dep.src, dep.dst) for dep in graph.dependencies}
    for chain in by_processor.values():
        for src, dst in zip(chain, chain[1:]):
            if (src, dst) not in existing:
                graph.add_dependency(src, dst, DependencyType.CPU_INTRA_THREAD)
    return graph


class TestBatchedPath:
    def test_fixture_graph_is_batchable(self, small_graph):
        plan = compile_batch_plan(compile_graph(small_graph))
        assert plan.n_levels > 0

    def test_fixture_graph_batch_matches_sequential(self, small_graph):
        compiled = compile_graph(small_graph)
        batch = assert_batch_identical(small_graph, scenario_matrix(compiled, 16))
        assert batch.batchable
        assert batch.fallback_reason is None

    def test_base_duration_rows_replay_the_base_run(self, small_graph):
        compiled = compile_graph(small_graph)
        session = SimulationSession(compiled)
        base = session.run()
        matrix = np.tile(compiled.durations, (3, 1))
        run = session.run_batch(matrix)
        assert run.batched
        for row in range(3):
            assert np.array_equal(run.starts[row], base.starts)
        assert (run.iteration_times_us == base.iteration_time_us).all()

    def test_start_time_offset(self, small_graph):
        compiled = compile_graph(small_graph)
        assert_batch_identical(small_graph, scenario_matrix(compiled, 4),
                               start_time=1234.5)

    def test_heap_tie_breaks_with_zero_durations(self):
        # Many tasks ready at t=0 on one stream: the sequential order is
        # decided purely by heap tie-breaks; the chained graph pins the
        # same order structurally and the times must agree exactly.
        graph = ExecutionGraph()
        for index in range(8):
            gpu(graph, duration=0.0, ts=float(index))
        for index in range(4):
            gpu(graph, duration=1.0, ts=8.0 + index)
        add_processor_chains(graph)
        compiled = compile_graph(graph)
        batch = assert_batch_identical(graph, scenario_matrix(compiled, 8))
        assert batch.batchable

    def test_collective_alignment_batches(self):
        # The cross-rank pair graph from tests/test_engine.py: send/recv
        # pairs must align on a common start in every scenario.
        graph = ExecutionGraph()
        slow = gpu(graph, rank=0, stream=7, duration=300.0)
        send = gpu(graph, rank=0, stream=28, duration=20.0, ts=1.0, group="pair-0")
        graph.add_dependency(slow.task_id, send.task_id, DependencyType.GPU_INTER_STREAM)
        recv = gpu(graph, rank=1, stream=30, duration=20.0, ts=1.0, group="pair-0")
        follow = gpu(graph, rank=1, stream=30, duration=5.0, ts=2.0, group="pair-1")
        graph.add_dependency(recv.task_id, follow.task_id, DependencyType.GPU_INTRA_STREAM)
        solo = gpu(graph, rank=0, stream=28, duration=5.0, ts=3.0, group="pair-1")
        graph.add_dependency(send.task_id, solo.task_id, DependencyType.GPU_INTRA_STREAM)
        compiled = compile_graph(graph)
        batch = assert_batch_identical(graph, scenario_matrix(compiled, 12))
        assert batch.batchable

    def test_stream_drain_sync_batches(self):
        # A sync must wait for the *last* kernel of its streams, whichever
        # kernel that is in each scenario.
        graph = ExecutionGraph()
        launch = cpu(graph, duration=1.0, name="cudaLaunchKernel")
        kernels = []
        for index, stream in enumerate((7, 7, 20)):
            kernel = gpu(graph, stream=stream, duration=10.0 * (index + 1),
                         ts=float(index))
            graph.add_dependency(launch.task_id, kernel.task_id,
                                 DependencyType.CPU_TO_GPU)
            kernels.append(kernel)
        sync = cpu(graph, duration=2.0, ts=5.0, name="cudaDeviceSynchronize",
                   sync_streams=(7, 20))
        graph.add_dependency(launch.task_id, sync.task_id,
                             DependencyType.CPU_INTRA_THREAD)
        tail = cpu(graph, duration=3.0, ts=6.0)
        graph.add_dependency(sync.task_id, tail.task_id,
                             DependencyType.CPU_INTRA_THREAD)
        add_processor_chains(graph)
        compiled = compile_graph(graph)
        batch = assert_batch_identical(graph, scenario_matrix(compiled, 16))
        assert batch.batchable

    def test_empty_graph(self):
        graph = ExecutionGraph()
        run = SimulationSession(compile_graph(graph)).run_batch(np.zeros((3, 0)))
        assert run.batch_size == 3
        assert (run.iteration_times_us == 0.0).all()

    def test_single_scenario_batch(self, small_graph):
        compiled = compile_graph(small_graph)
        assert_batch_identical(small_graph, scenario_matrix(compiled, 1))

    def test_empty_batch(self, small_graph):
        run = SimulationSession(compile_graph(small_graph)).run_batch(
            np.zeros((0, len(small_graph))))
        assert run.batch_size == 0
        assert len(run.iteration_times_us) == 0

    def test_duration_matrix_shape_is_checked(self, small_graph):
        session = SimulationSession(compile_graph(small_graph))
        with pytest.raises(ValueError):
            session.run_batch(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            session.run_batch(np.zeros(len(small_graph)))


class TestFallbackPath:
    def unordered_graph(self) -> ExecutionGraph:
        """Two same-thread tasks with no dependency: heap order depends on
        the durations, so no duration-independent schedule exists."""
        graph = ExecutionGraph()
        cpu(graph, duration=3.0)
        cpu(graph, duration=5.0, ts=1.0)
        gpu(graph, duration=2.0)
        return graph

    def test_unordered_processor_falls_back_with_reason(self):
        graph = self.unordered_graph()
        batch = BatchSession(compile_graph(graph))
        assert not batch.batchable
        assert "not dependency-ordered" in batch.fallback_reason
        with pytest.raises(UnbatchableGraphError):
            compile_batch_plan(compile_graph(graph))

    def test_fallback_is_bit_identical_too(self):
        graph = self.unordered_graph()
        compiled = compile_graph(graph)
        # The serialisation genuinely flips between these rows (3 vs 5 and
        # 5 vs 3): the fallback must reproduce the sequential heap exactly.
        matrix = np.array([[3.0, 5.0, 2.0],
                           [5.0, 3.0, 2.0],
                           [0.0, 0.0, 0.0]])
        batch = assert_batch_identical(graph, matrix)
        run = batch.run(matrix)
        assert not run.batched

    def test_fallback_reuses_the_sequential_session(self):
        graph = self.unordered_graph()
        session = SimulationSession(compile_graph(graph))
        assert session.batch_session()._fallback is session

    def test_deadlock_raises_like_sequential(self):
        # A kernel behind its own stream's synchronisation: Algorithm 1
        # deadlocks; the batched path must surface the same failure.
        graph = ExecutionGraph()
        sync = cpu(graph, duration=1.0, name="cudaStreamSynchronize",
                   sync_streams=(7,))
        kernel = gpu(graph, duration=5.0)
        graph.add_dependency(sync.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
        compiled = compile_graph(graph)
        batch = BatchSession(compiled)
        assert not batch.batchable
        with pytest.raises(RuntimeError):
            SimulationSession(compiled).run()
        with pytest.raises(RuntimeError):
            batch.run(np.zeros((2, 2)))

    def test_group_internal_dependency_is_unbatchable(self):
        graph = ExecutionGraph()
        a = gpu(graph, rank=0, stream=7, duration=1.0, group="pair")
        b = gpu(graph, rank=1, stream=7, duration=1.0, ts=1.0, group="pair")
        graph.add_dependency(a.task_id, b.task_id, DependencyType.GPU_INTER_STREAM)
        compiled = compile_graph(graph)
        batch = BatchSession(compiled)
        assert not batch.batchable
        with pytest.raises(RuntimeError):
            SimulationSession(compiled).run()
        with pytest.raises(RuntimeError):
            batch.run(np.zeros((1, 2)))


class TestFallbackReasonCodes:
    """One test per way the duration-independence proof can refuse.

    Every :class:`UnbatchableGraphError` must carry its machine-readable
    ``code`` and the :class:`BatchSession` must expose it as
    ``fallback_code`` (the human-readable message stays in
    ``fallback_reason``).
    """

    def unordered_graph(self) -> ExecutionGraph:
        graph = ExecutionGraph()
        cpu(graph, duration=3.0)
        cpu(graph, duration=5.0, ts=1.0)
        gpu(graph, duration=2.0)
        return graph

    def test_unordered_processor_tasks_code(self):
        compiled = compile_graph(self.unordered_graph())
        with pytest.raises(UnbatchableGraphError) as excinfo:
            compile_batch_plan(compiled)
        assert excinfo.value.code == FALLBACK_UNORDERED_TASKS
        batch = BatchSession(compiled)
        assert batch.fallback_code == FALLBACK_UNORDERED_TASKS

    def test_ancestry_table_overflow_code(self, monkeypatch):
        # Same-thread tasks ordered only transitively (through the GPU
        # kernel) force the ancestry table; a zero budget refuses it.
        graph = ExecutionGraph()
        first = cpu(graph, duration=1.0)
        kernel = gpu(graph, duration=2.0)
        second = cpu(graph, duration=1.0, ts=1.0)
        graph.add_dependency(first.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
        graph.add_dependency(kernel.task_id, second.task_id, DependencyType.GPU_TO_CPU)
        compiled = compile_graph(graph)
        assert compile_batch_plan(compiled).n_levels > 0
        monkeypatch.setattr("repro.core.batch._ANCESTRY_TABLE_LIMIT", 0)
        with pytest.raises(UnbatchableGraphError) as excinfo:
            compile_batch_plan(compiled)
        assert excinfo.value.code == FALLBACK_ANCESTRY_OVERFLOW
        batch = BatchSession(compiled)
        assert batch.fallback_code == FALLBACK_ANCESTRY_OVERFLOW

    def test_collective_internal_dependency_code(self):
        graph = ExecutionGraph()
        a = gpu(graph, rank=0, stream=7, duration=1.0, group="pair")
        b = gpu(graph, rank=1, stream=7, duration=1.0, ts=1.0, group="pair")
        graph.add_dependency(a.task_id, b.task_id, DependencyType.GPU_INTER_STREAM)
        compiled = compile_graph(graph)
        with pytest.raises(UnbatchableGraphError) as excinfo:
            compile_batch_plan(compiled)
        assert excinfo.value.code == FALLBACK_COLLECTIVE_DEPENDENCY
        assert BatchSession(compiled).fallback_code == FALLBACK_COLLECTIVE_DEPENDENCY

    def test_sync_cycle_code(self):
        graph = ExecutionGraph()
        sync = cpu(graph, duration=1.0, name="cudaStreamSynchronize",
                   sync_streams=(7,))
        kernel = gpu(graph, duration=5.0)
        graph.add_dependency(sync.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
        compiled = compile_graph(graph)
        with pytest.raises(UnbatchableGraphError) as excinfo:
            compile_batch_plan(compiled)
        assert excinfo.value.code == FALLBACK_SYNC_CYCLE
        assert BatchSession(compiled).fallback_code == FALLBACK_SYNC_CYCLE

    def test_batch_run_carries_the_fallback_reason(self, small_graph):
        fast = BatchSession(compile_graph(small_graph))
        run = fast.run(np.zeros((2, len(small_graph))))
        assert run.batched and run.fallback_reason is None
        slow = BatchSession(compile_graph(self.unordered_graph()))
        run = slow.run(np.zeros((2, 3)))
        assert not run.batched
        assert run.fallback_reason == slow.fallback_reason
        assert "not dependency-ordered" in run.fallback_reason


# -- property-style differential tests ----------------------------------------


def _matrices(compiled, data: st.DataObject, rows: int = 3) -> np.ndarray:
    seed = data.draw(st.integers(min_value=0, max_value=2**16), label="seed")
    return scenario_matrix(compiled, rows, seed=seed)


class TestPropertyDifferential:
    @settings(max_examples=hyp_max_examples(120), deadline=None)
    @given(random_graphs(), st.data())
    def test_random_graphs_batch_like_sequential(self, graph, data):
        """Raw random DAGs: mostly the fallback path, occasionally batched."""
        compiled = compile_graph(graph)
        session = SimulationSession(compiled)
        matrix = _matrices(compiled, data)
        try:
            expected = [session.run(durations=row).starts.copy() for row in matrix]
        except RuntimeError:
            with pytest.raises(RuntimeError):
                session.run_batch(matrix)
            return
        run = session.run_batch(matrix)
        for row, starts in enumerate(expected):
            assert np.array_equal(run.starts[row], starts)

    @settings(max_examples=hyp_max_examples(120), deadline=None)
    @given(random_graphs(), st.data())
    def test_chained_random_graphs_batch_like_sequential(self, graph, data):
        """Chained random DAGs: the builder invariant, vectorized path."""
        add_processor_chains(graph)
        compiled = compile_graph(graph)
        session = SimulationSession(compiled)
        matrix = _matrices(compiled, data, rows=4)
        try:
            expected = [session.run(durations=row).starts.copy() for row in matrix]
        except RuntimeError:
            with pytest.raises(RuntimeError):
                session.run_batch(matrix)
            return
        run = session.run_batch(matrix)
        for row, starts in enumerate(expected):
            assert np.array_equal(run.starts[row], starts)

    @settings(max_examples=hyp_max_examples(60), deadline=None)
    @given(random_graphs(),
           st.floats(min_value=0.0, max_value=1e6,
                     allow_nan=False, allow_infinity=False))
    def test_chained_random_graphs_with_offset(self, graph, start_time):
        add_processor_chains(graph)
        compiled = compile_graph(graph)
        session = SimulationSession(compiled)
        matrix = np.tile(compiled.durations, (2, 1)) * np.array([[1.0], [0.5]])
        try:
            expected = [session.run(durations=row, start_time=start_time).starts.copy()
                        for row in matrix]
        except RuntimeError:
            return
        run = session.run_batch(matrix, start_time=start_time)
        for row, starts in enumerate(expected):
            assert np.array_equal(run.starts[row], starts)


class TestServingGraphBatching:
    """Decode-step graphs must take the vectorized fast path, bit-identically.

    This is the proof the sweep runner relies on: serving sweep groups are
    evaluated through ``run_batch``, so the inference builder's graphs must
    be *provably* duration-independent (per-processor chains, no mid-episode
    partial syncs) and the batched times must equal sequential replays
    exactly.
    """

    @pytest.fixture(scope="class")
    def serving_graph(self):
        from repro.core.graph_builder import GraphBuilder
        from repro.emulator.api import emulate
        from repro.workload.inference import InferenceConfig
        from repro.workload.parallelism import ParallelismConfig
        from tests.conftest import tiny_model

        result = emulate(tiny_model(), ParallelismConfig(tensor_parallel=2),
                         inference=InferenceConfig(batch_size=4, prompt_length=128,
                                                   decode_length=3),
                         iterations=1, seed=13)
        return GraphBuilder().build(result.profiled)

    def test_decode_graph_is_provably_batchable(self, serving_graph):
        plan = compile_batch_plan(compile_graph(serving_graph))
        assert plan.n_levels > 0

    def test_decode_graph_batches_bit_identically(self, serving_graph):
        compiled = compile_graph(serving_graph)
        batch = assert_batch_identical(serving_graph, scenario_matrix(compiled, 16))
        assert batch.batchable
        assert batch.fallback_reason is None

    def test_decode_batch_run_takes_the_fast_path(self, serving_graph):
        compiled = compile_graph(serving_graph)
        session = SimulationSession(compiled)
        run = session.run_batch(scenario_matrix(compiled, 8))
        assert run.batched

    def test_serving_whatif_scenarios_match_individual_evaluation(self, serving_graph):
        scenarios = [
            scenario_for("kernel_class", op_class="decode_attention", speedup=2.0),
            scenario_for("kernel_class", op_class="gemm", speedup=2.0),
            scenario_for("communication", group="tp", speedup=3.0),
            scenario_for("launch_overhead"),
        ]
        batched = evaluate_scenarios(serving_graph, scenarios)
        for scenario, result in zip(scenarios, batched):
            alone = evaluate_scenario(serving_graph, scenario.name,
                                      scenario.predicate, scenario.speedup)
            assert result == alone
        decode_attn = batched[0]
        assert decode_attn.affected_tasks > 0


class TestStreamGraphBatching:
    """Continuous-batching stream graphs through the batched kernel.

    Unlike the fixed episode, the stream's decode batch varies step to
    step (requests join and leave), so the scenario matrix exercises
    levels of genuinely different widths — the differential contract is
    the same: bit-identical to sequential replays.
    """

    @pytest.fixture(scope="class")
    def stream_graph(self):
        from repro.core.graph_builder import GraphBuilder
        from repro.emulator.api import emulate
        from repro.workload.arrivals import parse_arrival
        from repro.workload.inference import InferenceConfig
        from repro.workload.parallelism import ParallelismConfig
        from tests.conftest import tiny_model

        inference = InferenceConfig(
            batch_size=4, prompt_length=128, decode_length=2,
            arrival=parse_arrival("poisson:rate=600,n=6,seed=3"))
        result = emulate(tiny_model(), ParallelismConfig(tensor_parallel=2),
                         inference=inference, iterations=1, seed=13)
        return GraphBuilder().build(result.profiled)

    def test_stream_has_varying_step_batches(self, stream_graph):
        from repro.core.serving_metrics import stream_plan_of

        plan = stream_plan_of(stream_graph.metadata)
        assert plan is not None
        assert len({len(step) for step in plan.step_requests}) > 1

    def test_stream_graph_is_provably_batchable(self, stream_graph):
        plan = compile_batch_plan(compile_graph(stream_graph))
        assert plan.n_levels > 0

    def test_stream_graph_batches_bit_identically(self, stream_graph):
        batch = assert_batch_identical(
            stream_graph, scenario_matrix(compile_graph(stream_graph), 16))
        assert batch.batchable
        assert batch.fallback_code is None

    def test_unbatchable_stream_graph_reports_serving_code(self):
        # When the proof fails on a graph that carries a stream plan, the
        # fallback is re-coded so serving sweeps can report "sequential
        # because stream" distinctly from generic refusals.
        graph = ExecutionGraph(metadata={"serving_stream": {"requests": []}})
        cpu(graph, duration=3.0)
        cpu(graph, duration=5.0, ts=1.0)
        gpu(graph, duration=2.0)
        batch = BatchSession(compile_graph(graph))
        assert not batch.batchable
        assert batch.fallback_code == FALLBACK_SERVING_STREAM
        assert FALLBACK_UNORDERED_TASKS in batch.fallback_reason

    def test_unbatchable_stream_graph_still_bit_identical(self):
        graph = ExecutionGraph(metadata={"serving_stream": {"requests": []}})
        cpu(graph, duration=3.0)
        cpu(graph, duration=5.0, ts=1.0)
        gpu(graph, duration=2.0)
        matrix = np.array([[3.0, 5.0, 2.0], [5.0, 3.0, 2.0]])
        batch = assert_batch_identical(graph, matrix)
        assert batch.fallback_code == FALLBACK_SERVING_STREAM


class TestWhatIfBatching:
    SCENARIOS = (
        scenario_for("kernel_class", op_class="gemm", speedup=2.0),
        scenario_for("kernel_class", op_class="gemm", speedup=4.0),
        scenario_for("communication", speedup=2.0),
        scenario_for("communication", group="dp", speedup=3.0),
        scenario_for("launch_overhead"),
        Scenario(name="everything x1.25", predicate=lambda task: True, speedup=1.25),
        Scenario(name="nothing", predicate=lambda task: False, speedup=2.0),
    )

    def test_batched_scenarios_match_individual_evaluation(self, small_graph):
        batched = evaluate_scenarios(small_graph, list(self.SCENARIOS))
        for scenario, result in zip(self.SCENARIOS, batched):
            alone = evaluate_scenario(small_graph, scenario.name,
                                      scenario.predicate, scenario.speedup)
            assert result == alone

    def test_shared_session_and_baseline(self, small_graph):
        session = SimulationSession(compile_graph(small_graph))
        baseline = session.run()
        batched = evaluate_scenarios(small_graph, list(self.SCENARIOS),
                                     baseline=baseline, session=session)
        assert all(result.baseline_time_us == baseline.iteration_time_us
                   for result in batched)

    def test_empty_scenario_list(self, small_graph):
        assert evaluate_scenarios(small_graph, []) == []

    def test_invalid_speedup_rejected(self, small_graph):
        with pytest.raises(ValueError):
            evaluate_scenarios(small_graph,
                               [Scenario("bad", lambda task: True, 0.0)])

    def test_study_builder_uses_one_batched_run(self, profiled_bundle):
        from repro.api import Study

        study = Study.from_trace(profiled_bundle)
        results = (study.whatif()
                   .kernel_class("gemm", 2.0)
                   .communication(2.0)
                   .launch_overhead()
                   .run())
        singles = [study.whatif("kernel_class", op_class="gemm", speedup=2.0),
                   study.whatif("communication", speedup=2.0),
                   study.whatif("launch_overhead")]
        assert results == singles
