"""Tests for the dPRO / analytical baselines and the analysis helpers."""

import pytest

from repro.analysis.comparison import compare_breakdowns, evaluate_replay
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.baselines.analytical import analytical_iteration_time
from repro.baselines.dpro import DPRO_OPTIONS, dpro_replay
from repro.core.breakdown import ExecutionBreakdown, compute_breakdown
from repro.core.tasks import DependencyType
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


class TestDproBaseline:
    def test_options_disable_inter_stream_only(self):
        assert not DPRO_OPTIONS.include_inter_stream
        assert DPRO_OPTIONS.include_sync
        assert DPRO_OPTIONS.include_collective_groups

    def test_dpro_graph_has_no_inter_stream_edges(self, profiled_bundle):
        result = dpro_replay(profiled_bundle)
        assert result.graph.dependency_counts()[DependencyType.GPU_INTER_STREAM] == 0

    def test_dpro_underestimates_iteration_time(self, profiled_bundle, measured_bundle,
                                                small_replay):
        dpro = dpro_replay(profiled_bundle)
        actual = measured_bundle.iteration_time()
        assert dpro.iteration_time_us < actual
        assert dpro.iteration_time_us < small_replay.iteration_time_us

    def test_dpro_overestimates_overlap(self, profiled_bundle, measured_bundle):
        dpro = dpro_replay(profiled_bundle)
        actual = compute_breakdown(measured_bundle)
        exposed_ratio_dpro = (dpro.breakdown().exposed_communication
                              / max(dpro.breakdown().total, 1e-9))
        exposed_ratio_actual = actual.exposed_communication / actual.total
        assert exposed_ratio_dpro < exposed_ratio_actual


class TestAnalyticalBaseline:
    def test_components_positive_for_3d_parallel_job(self):
        estimate = analytical_iteration_time(gpt3_model("gpt3-15b"), ParallelismConfig(2, 2, 4),
                                             TrainingConfig(num_microbatches=4))
        assert estimate.compute_us > 0
        assert estimate.tensor_parallel_comm_us > 0
        assert estimate.data_parallel_comm_us > 0
        assert estimate.pipeline_comm_us > 0
        assert estimate.bubble_us > 0
        assert estimate.total_us == pytest.approx(
            estimate.compute_us + estimate.tensor_parallel_comm_us
            + estimate.data_parallel_comm_us + estimate.pipeline_comm_us + estimate.bubble_us)

    def test_no_parallelism_no_comm(self):
        estimate = analytical_iteration_time(gpt3_model("gpt3-15b"), ParallelismConfig(1, 1, 1),
                                             TrainingConfig(num_microbatches=2))
        assert estimate.tensor_parallel_comm_us == 0
        assert estimate.data_parallel_comm_us == 0
        assert estimate.pipeline_comm_us == 0
        assert estimate.bubble_us == 0

    def test_bigger_model_takes_longer(self):
        parallel, training = ParallelismConfig(8, 4, 2), TrainingConfig(num_microbatches=4)
        assert analytical_iteration_time(gpt3_model("gpt3-175b"), parallel, training).total_us > \
            analytical_iteration_time(gpt3_model("gpt3-44b"), parallel, training).total_us

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            analytical_iteration_time(gpt3_model("gpt3-15b"), ParallelismConfig(1, 1, 1),
                                      TrainingConfig(), achievable_flops_fraction=0.0)

    def test_analytical_in_same_order_of_magnitude_as_emulation(self, small_model, small_parallel,
                                                                small_training, measured_bundle):
        estimate = analytical_iteration_time(small_model, small_parallel, small_training)
        actual = measured_bundle.iteration_time()
        # The analytical model is coarse (it has no launch gaps, idle time or
        # per-kernel effects), so only an order-of-magnitude agreement is
        # expected on the tiny test workload.
        assert 0.1 < estimate.total_us / actual < 10.0


class TestAnalysisHelpers:
    def test_evaluate_replay_consistency(self, profiled_bundle, measured_bundle, small_replay):
        comparison = evaluate_replay("tiny", profiled_bundle, measured_bundle,
                                     lumos_result=small_replay)
        assert comparison.actual_time_us == pytest.approx(measured_bundle.iteration_time())
        assert comparison.lumos_abs_error_percent == pytest.approx(
            abs(comparison.lumos_error_percent))
        assert comparison.lumos_abs_error_percent < comparison.dpro_abs_error_percent

    def test_compare_breakdowns_component_errors(self):
        actual = ExecutionBreakdown(100.0, 50.0, 30.0, 20.0)
        predicted = ExecutionBreakdown(110.0, 40.0, 30.0, 20.0)
        comparison = compare_breakdowns("x", actual, predicted)
        errors = comparison.component_errors_percent()
        assert errors["exposed_compute"] == pytest.approx(5.0)
        assert errors["overlapped"] == pytest.approx(-5.0)
        assert comparison.total_error_percent == pytest.approx(0.0)

    def test_compare_breakdowns_accepts_bundles(self, measured_bundle):
        comparison = compare_breakdowns("same", measured_bundle, measured_bundle)
        assert comparison.total_error_percent == pytest.approx(0.0)

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_breakdown_row_matches_headers(self):
        row = format_breakdown_row("label", ExecutionBreakdown(1.0, 2.0, 3.0, 4.0))
        assert len(row) == len(breakdown_headers())
