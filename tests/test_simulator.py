"""Tests for the replay simulator (Algorithm 1)."""

import pytest

from repro.core.graph import ExecutionGraph
from repro.core.simulator import Simulator
from repro.core.tasks import DependencyType, Task, TaskKind


def cpu(graph, rank=0, thread=1, duration=10.0, ts=0.0, name="op", sync_streams=()):
    return graph.add_task(Task(task_id=-1, rank=rank, kind=TaskKind.CPU, name=name,
                               duration=duration, trace_ts=ts, thread=thread,
                               sync_streams=sync_streams))


def gpu(graph, rank=0, stream=7, duration=10.0, ts=0.0, name="kernel", group=None, args=None):
    return graph.add_task(Task(task_id=-1, rank=rank, kind=TaskKind.GPU, name=name,
                               duration=duration, trace_ts=ts, stream=stream,
                               collective_group=group, args=args or {}))


class TestBasicScheduling:
    def test_empty_graph(self):
        result = Simulator(ExecutionGraph()).run()
        assert result.total_time() == 0.0

    def test_chain_respects_dependencies(self):
        graph = ExecutionGraph()
        a = cpu(graph, duration=10.0)
        b = cpu(graph, duration=5.0, ts=1.0)
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_INTRA_THREAD)
        result = Simulator(graph).run()
        assert result.tasks[b.task_id].start == pytest.approx(result.tasks[a.task_id].end)
        assert result.total_time() == pytest.approx(15.0)

    def test_independent_tasks_on_same_processor_serialize(self):
        graph = ExecutionGraph()
        a = gpu(graph, duration=10.0, ts=0.0)
        b = gpu(graph, duration=10.0, ts=1.0)
        result = Simulator(graph).run()
        starts = sorted([result.tasks[a.task_id].start, result.tasks[b.task_id].start])
        assert starts[1] >= 10.0

    def test_independent_tasks_on_different_processors_overlap(self):
        graph = ExecutionGraph()
        a = gpu(graph, stream=7, duration=100.0)
        b = gpu(graph, stream=20, duration=100.0)
        result = Simulator(graph).run()
        assert result.tasks[a.task_id].start == result.tasks[b.task_id].start

    def test_start_time_offset(self):
        graph = ExecutionGraph()
        task = cpu(graph, duration=5.0)
        result = Simulator(graph).run(start_time=1000.0)
        assert result.tasks[task.task_id].start == 1000.0
        assert result.total_time() == pytest.approx(5.0)

    def test_cycle_detection_raises(self):
        graph = ExecutionGraph()
        a, b = cpu(graph), cpu(graph, ts=1.0)
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_INTRA_THREAD)
        graph.add_dependency(b.task_id, a.task_id, DependencyType.CPU_INTRA_THREAD)
        with pytest.raises(RuntimeError):
            Simulator(graph).run()


class TestRuntimeSyncDependencies:
    def test_sync_waits_for_all_kernels_on_stream(self):
        graph = ExecutionGraph()
        launch = cpu(graph, duration=1.0)
        kernel = gpu(graph, stream=7, duration=500.0)
        graph.add_dependency(launch.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
        sync = cpu(graph, duration=2.0, ts=2.0, name="cudaStreamSynchronize", sync_streams=(7,))
        graph.add_dependency(launch.task_id, sync.task_id, DependencyType.CPU_INTRA_THREAD)
        after = cpu(graph, duration=1.0, ts=3.0, name="after")
        graph.add_dependency(sync.task_id, after.task_id, DependencyType.CPU_INTRA_THREAD)

        result = Simulator(graph).run()
        assert result.tasks[sync.task_id].start >= result.tasks[kernel.task_id].end
        assert result.tasks[after.task_id].start >= result.tasks[kernel.task_id].end

    def test_sync_on_empty_stream_completes_immediately(self):
        graph = ExecutionGraph()
        sync = cpu(graph, duration=2.0, name="cudaDeviceSynchronize", sync_streams=(7, 20))
        result = Simulator(graph).run()
        assert result.tasks[sync.task_id].start == 0.0

    def test_sync_waits_for_multiple_streams(self):
        graph = ExecutionGraph()
        k1 = gpu(graph, stream=7, duration=100.0)
        k2 = gpu(graph, stream=20, duration=700.0)
        sync = cpu(graph, duration=1.0, name="cudaDeviceSynchronize", sync_streams=(7, 20))
        result = Simulator(graph).run()
        assert result.tasks[sync.task_id].start >= max(result.tasks[k1.task_id].end,
                                                       result.tasks[k2.task_id].end)

    def test_sync_only_waits_for_its_rank(self):
        graph = ExecutionGraph()
        gpu(graph, rank=1, stream=7, duration=1000.0)
        sync = cpu(graph, rank=0, duration=1.0, name="cudaStreamSynchronize", sync_streams=(7,))
        result = Simulator(graph).run()
        assert result.tasks[sync.task_id].start == 0.0


class TestCollectiveAlignment:
    def test_group_members_start_together(self):
        graph = ExecutionGraph()
        slow_prev = gpu(graph, rank=0, stream=7, duration=300.0, ts=0.0)
        send = gpu(graph, rank=0, stream=28, duration=20.0, ts=1.0, group="pair")
        graph.add_dependency(slow_prev.task_id, send.task_id, DependencyType.GPU_INTER_STREAM)
        recv = gpu(graph, rank=1, stream=30, duration=20.0, ts=1.0, group="pair")
        result = Simulator(graph).run()
        assert result.tasks[send.task_id].start == pytest.approx(result.tasks[recv.task_id].start)
        assert result.tasks[recv.task_id].start >= 300.0

    def test_single_member_group_runs_alone(self):
        graph = ExecutionGraph()
        only = gpu(graph, group="solo", duration=10.0)
        result = Simulator(graph).run()
        assert result.tasks[only.task_id].start == 0.0


class TestSimulationResult:
    def test_result_covers_every_task(self, small_graph):
        result = Simulator(small_graph).run()
        assert len(result.tasks) == len(small_graph)

    def test_dependencies_respected_in_emulated_graph(self, small_graph):
        result = Simulator(small_graph).run()
        for dependency in small_graph.dependencies:
            src, dst = result.tasks[dependency.src], result.tasks[dependency.dst]
            assert dst.start >= src.end - 1e-6

    def test_no_overlap_on_any_processor(self, small_graph):
        result = Simulator(small_graph).run()
        by_processor = {}
        for simulated in result.tasks.values():
            by_processor.setdefault(simulated.task.processor, []).append(simulated)
        for simulated_tasks in by_processor.values():
            simulated_tasks.sort(key=lambda t: t.start)
            for previous, current in zip(simulated_tasks, simulated_tasks[1:]):
                assert current.start >= previous.end - 1e-6

    def test_to_trace_bundle_roundtrip(self, small_graph):
        result = Simulator(small_graph).run()
        bundle = result.to_trace_bundle()
        assert bundle.ranks() == small_graph.ranks()
        kernels = sum(len(trace.kernels()) for trace in bundle)
        assert kernels == len(small_graph.gpu_tasks())
        assert bundle.iteration_time() > 0

    def test_rank_span_within_total(self, small_graph):
        result = Simulator(small_graph).run()
        for rank in small_graph.ranks():
            start, end = result.rank_span(rank)
            assert result.start_time <= start <= end <= result.end_time()
