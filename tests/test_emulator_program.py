"""Unit tests for the emulator's program representation and builder."""

import pytest

from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    KernelIntent,
    LaunchKernel,
    RankProgram,
    StreamSync,
    StreamWaitEvent,
    Streams,
    Threads,
)
from repro.emulator.program_builder import ProgramBuilder
from repro.workload.parallelism import ParallelismConfig
from repro.workload.pipeline import stage_layers
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model


class TestProgramPrimitives:
    def test_kernel_intent_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            KernelIntent(name="k", stream=7, duration_us=-1.0, op_class="gemm")

    def test_launch_total_duration(self):
        kernel = KernelIntent(name="k", stream=7, duration_us=1.0, op_class="gemm")
        launch = LaunchKernel(thread=Threads.MAIN, kernel=kernel,
                              op_duration_us=3.0, launch_duration_us=4.0)
        assert launch.duration_us == 7.0

    def test_rank_program_kernels(self):
        program = RankProgram(rank=0, stage=0)
        kernel = KernelIntent(name="k", stream=7, duration_us=1.0, op_class="gemm")
        program.append(CpuCompute(thread=Threads.MAIN, name="x", duration_us=1.0))
        program.append(LaunchKernel(thread=Threads.MAIN, kernel=kernel))
        assert program.num_kernels() == 1
        assert program.kernels() == [kernel]
        assert len(program) == 2


class TestProgramBuilder:
    @pytest.fixture(scope="class")
    def programs(self):
        builder = ProgramBuilder(tiny_model(n_layers=4), ParallelismConfig(2, 2, 2),
                                 TrainingConfig(micro_batch_size=1, num_microbatches=2,
                                                sequence_length=512, gradient_bucket_layers=2))
        return builder.build()

    def test_one_program_per_pipeline_stage(self, programs):
        assert len(programs) == 2

    def test_programs_assigned_to_representative_ranks(self, programs):
        parallel = ParallelismConfig(2, 2, 2)
        expected = parallel.groups().representative_ranks()
        assert sorted(programs) == sorted(expected)

    def test_every_stage_launches_kernels_on_compute_and_tp_streams(self, programs):
        for program in programs.values():
            streams = {k.stream for k in program.kernels()}
            assert Streams.COMPUTE in streams
            assert Streams.TP_COMM in streams

    def test_dp_allreduce_emitted_once_per_bucket(self, programs):
        model = tiny_model(n_layers=4)
        for program in programs.values():
            dp_kernels = [k for k in program.kernels() if k.group == "dp"]
            layers = stage_layers(model.n_layers, 2, program.stage)
            expected_buckets = -(-len(layers) // 2) + (1 if program.stage == 0 else 0)
            assert len(dp_kernels) == expected_buckets

    def test_p2p_kernels_present_on_both_sides_with_matching_keys(self, programs):
        sends = {k.comm_key for p in programs.values() for k in p.kernels()
                 if k.collective == "send"}
        recvs = {k.comm_key for p in programs.values() for k in p.kernels()
                 if k.collective == "recv"}
        assert sends and sends == recvs

    def test_backward_instructions_on_backward_thread(self, programs):
        for program in programs.values():
            backward_launches = [i for i in program.instructions
                                 if isinstance(i, LaunchKernel) and i.kernel.phase == "backward"
                                 and i.kernel.collective is None]
            assert backward_launches
            assert all(i.thread == Threads.BACKWARD for i in backward_launches)

    def test_event_records_and_waits_are_paired(self, programs):
        for program in programs.values():
            records = {i.event_id for i in program.instructions if isinstance(i, EventRecord)}
            waits = {i.event_id for i in program.instructions if isinstance(i, StreamWaitEvent)}
            assert waits <= records

    def test_iteration_ends_with_device_sync(self, programs):
        for program in programs.values():
            kinds = [type(i) for i in program.instructions]
            assert DeviceSync in kinds
            assert kinds.index(DeviceSync) > kinds.index(StreamSync)

    def test_forward_kernel_count_matches_schedule(self, programs):
        # Stage 0 runs embedding + per-layer forward ops for every micro-batch.
        stage0 = programs[min(programs)]
        forward = [k for k in stage0.kernels() if k.phase == "forward"]
        per_microbatch = len({(k.layer, k.op_name) for k in forward})
        assert len(forward) == per_microbatch * 2  # two micro-batches

    def test_too_small_cluster_rejected(self):
        from repro.hardware.cluster import ClusterSpec
        with pytest.raises(ValueError):
            ProgramBuilder(tiny_model(), ParallelismConfig(2, 2, 2),
                           TrainingConfig(num_microbatches=2),
                           cluster=ClusterSpec(num_gpus=4))

    def test_pp_larger_than_layers_rejected(self):
        with pytest.raises(ValueError):
            ProgramBuilder(tiny_model(n_layers=2), ParallelismConfig(1, 4, 1),
                           TrainingConfig(num_microbatches=2))
