"""Unit tests for the kernel and collective cost models."""

import pytest

from repro.hardware.cluster import ClusterSpec
from repro.hardware.gpu import A100_SXM, H100_SXM
from repro.kernels.attention import attention_time_us
from repro.kernels.collectives import (
    collective_time_us,
    effective_bandwidth_bytes_per_us,
    point_to_point_time_us,
)
from repro.kernels.gemm import gemm_efficiency, gemm_time_us
from repro.kernels.memory_bound import memory_bound_time_us
from repro.kernels.registry import KernelCostModel
from repro.workload.operators import CollectiveKind, CollectiveSpec, OpClass, OpSpec


class TestGemm:
    def test_time_scales_roughly_linearly_with_flops(self):
        small = gemm_time_us(4096, 4096, 4096, 2, H100_SXM)
        large = gemm_time_us(4096, 4096, 8192, 2, H100_SXM)
        assert large / small == pytest.approx(2.0, rel=0.15)

    def test_small_gemm_dominated_by_overhead(self):
        assert gemm_time_us(8, 8, 8, 2, H100_SXM) < 3 * H100_SXM.kernel_fixed_overhead_us

    def test_faster_gpu_is_faster(self):
        assert gemm_time_us(8192, 8192, 8192, 2, H100_SXM) < \
            gemm_time_us(8192, 8192, 8192, 2, A100_SXM)

    def test_efficiency_bounded_and_monotonic_in_size(self):
        small = gemm_efficiency(128, 128, 128)
        large = gemm_efficiency(8192, 8192, 8192)
        assert 0 < small <= large <= 1

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            gemm_time_us(0, 10, 10, 2, H100_SXM)
        with pytest.raises(ValueError):
            gemm_efficiency(-1, 10, 10)


class TestAttentionAndMemoryBound:
    def test_attention_time_grows_with_flops(self):
        assert attention_time_us(1e12, 1e8, H100_SXM) > attention_time_us(1e11, 1e8, H100_SXM)

    def test_attention_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            attention_time_us(-1.0, 0.0, H100_SXM)

    def test_memory_bound_linear_in_bytes(self):
        t1 = memory_bound_time_us(1e9, H100_SXM) - H100_SXM.kernel_fixed_overhead_us
        t2 = memory_bound_time_us(2e9, H100_SXM) - H100_SXM.kernel_fixed_overhead_us
        assert t2 / t1 == pytest.approx(2.0, rel=0.01)

    def test_memory_bound_efficiency_varies_by_op_class(self):
        embedding = memory_bound_time_us(1e9, H100_SXM, op_class="embedding")
        elementwise = memory_bound_time_us(1e9, H100_SXM, op_class="elementwise")
        assert embedding > elementwise

    def test_memory_bound_rejects_negative_bytes(self):
        with pytest.raises(ValueError):
            memory_bound_time_us(-1.0, H100_SXM)


class TestCollectives:
    @pytest.fixture
    def cluster(self):
        return ClusterSpec(num_gpus=32, gpus_per_node=8)

    def test_single_rank_group_is_overhead_only(self, cluster):
        assert collective_time_us("all_reduce", 1e9, (0,), cluster) < 10.0

    def test_all_reduce_moves_twice_reduce_scatter_traffic(self, cluster):
        ranks = (0, 1, 2, 3)
        all_reduce = collective_time_us("all_reduce", 1e9, ranks, cluster)
        reduce_scatter = collective_time_us("reduce_scatter", 1e9, ranks, cluster)
        assert all_reduce / reduce_scatter == pytest.approx(2.0, rel=0.1)

    def test_inter_node_group_slower_than_intra_node(self, cluster):
        intra = collective_time_us("all_reduce", 1e9, (0, 1, 2, 3), cluster)
        inter = collective_time_us("all_reduce", 1e9, (0, 8, 16, 24), cluster)
        assert inter > intra

    def test_nic_parallelism_helps_multi_member_nodes(self, cluster):
        spread = collective_time_us("all_reduce", 1e9, (0, 8, 16, 24), cluster)
        packed = collective_time_us("all_reduce", 1e9, (0, 2, 4, 6, 8, 10, 12, 14), cluster)
        assert packed < spread

    def test_effective_bandwidth_intra_vs_inter(self, cluster):
        intra = effective_bandwidth_bytes_per_us((0, 1), cluster)
        inter = effective_bandwidth_bytes_per_us((0, 8), cluster)
        assert intra > inter

    def test_unknown_collective_raises(self, cluster):
        with pytest.raises(ValueError):
            collective_time_us("all_to_all_unknown", 1e6, (0, 1), cluster)

    def test_negative_size_raises(self, cluster):
        with pytest.raises(ValueError):
            collective_time_us("all_reduce", -1.0, (0, 1), cluster)

    def test_point_to_point_inter_node_slower(self, cluster):
        assert (point_to_point_time_us(1e8, 0, 8, cluster)
                > point_to_point_time_us(1e8, 0, 1, cluster))


class TestKernelCostModel:
    @pytest.fixture
    def cost(self):
        return KernelCostModel(ClusterSpec(num_gpus=16, gpus_per_node=8))

    def test_dispatch_gemm(self, cost):
        op = OpSpec(name="g", op_class=OpClass.GEMM, m=1024, n=1024, k=1024)
        assert cost.duration_us(op) > 0

    def test_dispatch_attention(self, cost):
        op = OpSpec(name="a", op_class=OpClass.ATTENTION, flops=1e11, bytes_accessed=1e8)
        assert cost.duration_us(op) > 0

    def test_dispatch_memory_bound_classes(self, cost):
        for op_class in (OpClass.LAYERNORM, OpClass.DROPOUT, OpClass.OPTIMIZER):
            op = OpSpec(name="m", op_class=op_class, bytes_accessed=1e7)
            assert cost.duration_us(op) > 0

    def test_communication_requires_group_ranks(self, cost):
        op = OpSpec(name="c", op_class=OpClass.COMM,
                    collective=CollectiveSpec(CollectiveKind.ALL_REDUCE, 1e6, "tp"))
        with pytest.raises(ValueError):
            cost.duration_us(op)
        assert cost.duration_us(op, group_ranks=(0, 1)) > 0

    def test_point_to_point_requires_two_ranks(self, cost):
        op = OpSpec(name="p", op_class=OpClass.COMM,
                    collective=CollectiveSpec(CollectiveKind.SEND, 1e6, "pp"))
        with pytest.raises(ValueError):
            cost.duration_us(op, group_ranks=(0, 1, 2))

    def test_unknown_op_class_raises(self, cost):
        with pytest.raises(ValueError):
            cost.duration_us(OpSpec(name="x", op_class="mystery"))
