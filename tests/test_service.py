"""Tests for the sweep service: protocol, job store, workers, HTTP API.

The acceptance-critical end-to-end property lives here: two concurrent
clients submitting the identical (bundle, spec) pair dedupe to one job
and one evaluation, both read identical ranked results, and an identical
resubmission after completion is served entirely from the shared on-disk
sweep cache (``cache_hit_rate == 1.0``).  Every refusal surfaces as a
typed error with a stable machine-readable code, never a traceback.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.emulator.api import emulate
from repro.service import (
    PROTOCOL_VERSION,
    JobRecord,
    JobStore,
    ProtocolError,
    ServiceApp,
    ServiceClient,
    ServiceError,
    SubmitRequest,
    TraceRegistry,
    Worker,
    WorkerFleet,
    bundle_from_json,
    bundle_to_json,
    deliver_webhook,
    error_for_exception,
    job_id_for,
    validate_result_payload,
)
from repro.service.jobs import (
    EVENT_LEASE_EXPIRED,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
)
from repro.service.protocol import (
    CODE_BAD_REQUEST,
    CODE_INTERNAL,
    CODE_INVALID_SPEC,
    CODE_JOB_FAILED,
    CODE_JOB_NOT_DONE,
    CODE_JOB_STATE,
    CODE_STUDY_ERROR,
    CODE_UNKNOWN_JOB,
    CODE_UNKNOWN_TRACE,
    CODE_UNSUPPORTED_TARGET,
    CODE_UNSUPPORTED_VERSION,
    CODE_WORKER_LOST,
)
from repro.api.errors import PredictError, StudyError
from repro.sweep.hashing import hash_trace_bundle
from repro.sweep.spec import SweepSpecError
from repro.workload.inference import InferenceConfig
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig


@pytest.fixture(scope="module")
def serving_trace_dir(tmp_path_factory):
    """One tiny saved gpt3-15b serving bundle every service test reuses."""
    bundle = emulate(
        gpt3_model("gpt3-15b"), ParallelismConfig.parse("2x1x1"),
        inference=InferenceConfig(batch_size=2, prompt_length=64, decode_length=8),
        iterations=1, seed=7).profiled
    directory = tmp_path_factory.mktemp("service-traces") / "serving"
    bundle.save(directory)
    return directory


@pytest.fixture
def manual_app(serving_trace_dir, tmp_path):
    """A running HTTP front end with NO workers: tests drain the queue.

    Webhooks are opted in (any host) so the webhook tests can point the
    server at local receivers; the default-off policy has its own tests.
    """
    with ServiceApp(tmp_path / "svc", workers=0, webhook_hosts=("*",),
                    traces={"canned": serving_trace_dir}) as app:
        yield app


def _drain(app: ServiceApp, jobs: int = 1) -> Worker:
    """Process ``jobs`` queued jobs with one manually driven worker."""
    worker = Worker(app.store, app.registry, app.cache_root, metrics=app.metrics)
    for _ in range(jobs):
        assert worker.run_once()
    return worker


SWEEP_BODY = {"kind": "sweep", "trace": "canned",
              "targets": ["serving:batch=4"], "whatif": ["gemm:2"]}


class TestSubmitRequest:
    def _parse_error(self, payload) -> ProtocolError:
        with pytest.raises(ProtocolError) as excinfo:
            SubmitRequest.parse(payload)
        return excinfo.value

    def test_parses_a_full_sweep_body(self):
        request = SubmitRequest.parse({
            "version": 1, "kind": "sweep", "trace": "canned",
            "targets": ["2x2x8"], "whatif": ["gemm:2"], "slo_ms": 250,
            "base": {"micro_batch_size": 1}, "reuse": True})
        assert request.kind == "sweep"
        assert request.targets == ("2x2x8",)
        assert request.slo_ms == 250.0
        assert request.reuse is True

    def test_rejects_non_object_body(self):
        assert self._parse_error([1, 2]).code == CODE_BAD_REQUEST

    def test_rejects_wrong_version(self):
        error = self._parse_error({"version": 99, "kind": "sweep", "trace": "t",
                                   "targets": ["2x2x8"]})
        assert error.code == CODE_UNSUPPORTED_VERSION
        assert error.status == 400

    def test_rejects_unknown_kind(self):
        error = self._parse_error({"version": 1, "kind": "train", "trace": "t"})
        assert error.code == CODE_BAD_REQUEST

    def test_requires_exactly_one_trace_source(self):
        neither = self._parse_error({"version": 1, "kind": "sweep",
                                     "targets": ["2x2x8"]})
        both = self._parse_error({"version": 1, "kind": "sweep", "trace": "t",
                                  "bundle": {}, "targets": ["2x2x8"]})
        assert neither.code == CODE_BAD_REQUEST
        assert both.code == CODE_BAD_REQUEST

    def test_predict_requires_target(self):
        error = self._parse_error({"version": 1, "kind": "predict", "trace": "t"})
        assert error.code == CODE_BAD_REQUEST
        assert "target" in error.message

    def test_sweep_requires_some_axis(self):
        error = self._parse_error({"version": 1, "kind": "sweep", "trace": "t"})
        assert "spec" in error.message

    def test_rejects_non_string_targets(self):
        error = self._parse_error({"version": 1, "kind": "sweep", "trace": "t",
                                   "targets": [1]})
        assert error.code == CODE_BAD_REQUEST

    def test_rejects_non_numeric_slo(self):
        error = self._parse_error({"version": 1, "kind": "sweep", "trace": "t",
                                   "targets": ["2x2x8"], "slo_ms": "fast"})
        assert error.code == CODE_BAD_REQUEST

    def test_webhook_must_be_an_http_url(self):
        request = SubmitRequest.parse({
            "version": 1, "kind": "sweep", "trace": "t", "targets": ["2x2x8"],
            "webhook": "https://hooks.example/done"})
        assert request.webhook == "https://hooks.example/done"
        for bad in ("ftp://x", "hooks.example/done", 7):
            error = self._parse_error({"version": 1, "kind": "sweep",
                                       "trace": "t", "targets": ["2x2x8"],
                                       "webhook": bad})
            assert error.code == CODE_BAD_REQUEST


class TestErrorMapping:
    def test_library_errors_map_to_stable_codes(self):
        assert error_for_exception(SweepSpecError("x")).code == CODE_INVALID_SPEC
        assert error_for_exception(PredictError("x")).code == CODE_UNSUPPORTED_TARGET
        assert error_for_exception(StudyError("x")).code == CODE_STUDY_ERROR
        assert error_for_exception(RuntimeError("x")).code == CODE_INTERNAL

    def test_protocol_errors_pass_through(self):
        original = ProtocolError(CODE_UNKNOWN_TRACE, "gone")
        assert error_for_exception(original) is original

    def test_status_codes_are_4xx_for_refusals(self):
        assert ProtocolError(CODE_INVALID_SPEC, "x").status == 400
        assert ProtocolError(CODE_UNKNOWN_JOB, "x").status == 404
        assert ProtocolError(CODE_JOB_NOT_DONE, "x").status == 409
        assert ProtocolError(CODE_INTERNAL, "x").status == 500
        assert ProtocolError("never-seen", "x").status == 500

    def test_wire_body_shape(self):
        body = ProtocolError(CODE_INVALID_SPEC, "broken").to_json()
        assert body == {"error": {"code": "invalid-spec", "message": "broken"}}


class TestBundleTransport:
    def test_roundtrip_preserves_hash(self, serving_trace_dir):
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(serving_trace_dir)
        rebuilt = bundle_from_json(bundle_to_json(bundle))
        assert hash_trace_bundle(rebuilt) == hash_trace_bundle(bundle)
        assert rebuilt.metadata == bundle.metadata

    def test_malformed_upload_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            bundle_from_json({"metadata": {}, "traces": {}})
        assert excinfo.value.code == CODE_BAD_REQUEST
        with pytest.raises(ProtocolError):
            bundle_from_json({"traces": {"0": "not-a-trace"}})


class TestResultValidation:
    def _sweep_row(self) -> dict:
        return {"label": "base", "kind": "baseline", "target": "base",
                "whatif": None, "world_size": 2, "iteration_time_us": 1.0,
                "base_time_us": 1.0, "affected_tasks": 0, "from_cache": False}

    def _sweep_payload(self) -> dict:
        row = self._sweep_row()
        return {"schema": 1, "kind": "sweep", "workload": "serving",
                "base_time_us": 1.0, "elapsed_seconds": 0.1, "workers": 1,
                "cache": {"hits": 0, "misses": 1, "lookups": 1, "hit_rate": 0.0},
                "scenarios": [row], "ranked": [row], "pareto": [row]}

    def test_accepts_a_wellformed_sweep_result(self):
        assert validate_result_payload(self._sweep_payload())["kind"] == "sweep"

    def test_rejects_wrong_schema_and_kind(self):
        with pytest.raises(ValueError, match="schema"):
            validate_result_payload({"schema": 99, "kind": "sweep"})
        with pytest.raises(ValueError, match="kind"):
            validate_result_payload({"schema": 1, "kind": "mystery"})

    def test_rejects_missing_cache_block(self):
        payload = self._sweep_payload()
        del payload["cache"]
        with pytest.raises(ValueError, match="cache"):
            validate_result_payload(payload)

    def test_rejects_missing_columns(self):
        payload = self._sweep_payload()
        del payload["ranked"][0]["from_cache"]
        with pytest.raises(ValueError, match="from_cache"):
            validate_result_payload(payload)

    def test_rejects_ranked_not_permuting_scenarios(self):
        payload = self._sweep_payload()
        payload["ranked"] = []
        with pytest.raises(ValueError, match="permute"):
            validate_result_payload(payload)

    def test_predict_result_columns(self):
        payload = {"schema": 1, "kind": "predict", "label": "batch=4",
                   "target": {"kind": "serving", "label": "batch=4"},
                   "world_size": 2, "iteration_time_us": 1.0,
                   "base_time_us": 2.0, "speedup_vs_base": 2.0, "serving": None}
        assert validate_result_payload(payload)["kind"] == "predict"
        del payload["speedup_vs_base"]
        with pytest.raises(ValueError, match="speedup_vs_base"):
            validate_result_payload(payload)


def _record(job_id: str = "j" * 32, payload: dict | None = None,
            submitted_unix: float = 0.0) -> JobRecord:
    return JobRecord(job_id=job_id, kind="sweep", trace="canned",
                     bundle_hash="b" * 64, payload=payload or {"x": 1},
                     submitted_unix=submitted_unix)


class TestJobStore:
    def test_job_ids_are_deterministic_content_hashes(self):
        one = job_id_for("b" * 64, "sweep", {"spec": {"a": 1, "b": 2}})
        two = job_id_for("b" * 64, "sweep", {"spec": {"b": 2, "a": 1}})
        assert one == two
        assert len(one) == 32
        assert job_id_for("c" * 64, "sweep", {"spec": {"a": 1, "b": 2}}) != one

    def test_submit_then_get_roundtrips(self, tmp_path):
        store = JobStore(tmp_path)
        record, deduped = store.submit(_record())
        assert not deduped
        assert record.state == STATE_QUEUED
        assert record.submitted_unix > 0
        assert store.get(record.job_id).to_json() == record.to_json()

    def test_identical_queued_submission_dedupes(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = store.submit(_record())
        second, deduped = store.submit(_record())
        assert deduped
        assert second.job_id == first.job_id
        assert store.queue_depth() == 1

    def test_terminal_resubmission_reenqueues_with_attempts(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())
        running = store.claim_next("w")
        store.mark_done(running, {"ok": True}, {"hit_rate": 1.0})
        again, deduped = store.submit(_record())
        assert not deduped
        assert again.state == STATE_QUEUED
        assert again.attempts == 2

    def test_terminal_resubmission_with_reuse_returns_done_record(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())
        store.mark_done(store.claim_next("w"), {"ok": True})
        reused, deduped = store.submit(_record(), reuse=True)
        assert deduped
        assert reused.state == STATE_DONE
        assert reused.result == {"ok": True}

    def test_claim_is_fifo_by_submission_time(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(_record("a" * 32, submitted_unix=200.0))
        store.submit(_record("b" * 32, submitted_unix=100.0))
        claimed = store.claim_next("w")
        assert claimed.job_id == "b" * 32
        assert claimed.state == STATE_RUNNING
        assert claimed.worker == "w"

    def test_excl_claim_file_blocks_double_claims(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())
        (store.claims_dir / f"{record.job_id}.claim").write_text("other")
        assert store.claim_next("w") is None

    def test_two_stores_on_one_root_claim_each_job_once(self, tmp_path):
        alpha, beta = JobStore(tmp_path), JobStore(tmp_path)
        alpha.submit(_record("a" * 32, submitted_unix=1.0))
        alpha.submit(_record("b" * 32, submitted_unix=2.0))
        claims = [alpha.claim_next("alpha"), beta.claim_next("beta"),
                  beta.claim_next("beta")]
        ids = [record.job_id for record in claims if record is not None]
        assert sorted(ids) == ["a" * 32, "b" * 32]

    def test_mark_failed_persists_typed_error(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(_record())
        failed = store.mark_failed(store.claim_next("w"),
                                   {"code": "invalid-spec", "message": "no"})
        assert failed.state == STATE_FAILED
        reloaded = JobStore(tmp_path).get(failed.job_id)
        assert reloaded.error["code"] == "invalid-spec"

    def test_done_job_visible_to_a_fresh_store(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(_record())
        store.mark_done(store.claim_next("w"), {"ok": 1})
        fresh = JobStore(tmp_path)
        assert fresh.get("j" * 32).state == STATE_DONE
        assert fresh.queue_depth() == 0

    def test_cancel_only_queued_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())
        assert store.cancel(record.job_id).state == STATE_CANCELLED
        with pytest.raises(ProtocolError) as excinfo:
            store.cancel(record.job_id)
        assert excinfo.value.code == CODE_JOB_STATE
        with pytest.raises(ProtocolError) as excinfo:
            store.cancel("f" * 32)
        assert excinfo.value.code == CODE_UNKNOWN_JOB

    def test_reenqueue_is_visible_to_a_peer_store(self, tmp_path):
        """Regression: a peer that already indexed the terminal record
        must observe a resubmission's queued snapshot (same path, new
        stat identity) — otherwise a fleet never claims the rerun."""
        alpha = JobStore(tmp_path)
        alpha.submit(_record())
        alpha.mark_done(alpha.claim_next("alpha"), {"ok": True})
        beta = JobStore(tmp_path)  # indexes the terminal record
        assert beta.get("j" * 32).state == STATE_DONE
        again, deduped = alpha.submit(_record())
        assert not deduped
        assert again.attempts == 2
        beta.refresh()
        assert beta.get("j" * 32).state == STATE_QUEUED
        claimed = beta.claim_next("beta")
        assert claimed is not None
        assert claimed.job_id == "j" * 32
        assert claimed.attempts == 2

    def test_foreign_files_in_jobs_dir_are_ignored(self, tmp_path):
        store = JobStore(tmp_path)
        store.submit(_record())
        (store.jobs_dir / "junk.json").write_text("{torn", encoding="utf-8")
        (store.jobs_dir / "old.json").write_text('{"schema": 99}', encoding="utf-8")
        store.refresh()
        assert [r.job_id for r in store.jobs()] == ["j" * 32]


class TestTraceRegistry:
    def test_resolve_memoizes_bundle_and_hash(self, serving_trace_dir):
        registry = TraceRegistry()
        registry.register("canned", serving_trace_dir)
        bundle, bundle_hash = registry.resolve("canned")
        assert registry.resolve("canned")[0] is bundle
        assert bundle_hash == hash_trace_bundle(bundle)
        assert registry.names() == ["canned"]

    def test_unknown_name_is_typed(self):
        registry = TraceRegistry()
        with pytest.raises(ProtocolError) as excinfo:
            registry.resolve("nope")
        assert excinfo.value.code == CODE_UNKNOWN_TRACE
        assert excinfo.value.status == 404

    def test_unloadable_path_is_typed(self, tmp_path):
        registry = TraceRegistry()
        registry.register("empty", tmp_path / "missing")
        with pytest.raises(ProtocolError) as excinfo:
            registry.resolve("empty")
        assert excinfo.value.code == CODE_UNKNOWN_TRACE

    def test_inline_upload_spools_under_content_hash(self, serving_trace_dir,
                                                     tmp_path):
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(serving_trace_dir)
        registry = TraceRegistry(spool_dir=tmp_path / "spool")
        (tmp_path / "spool").mkdir()
        name = registry.store_inline(bundle_to_json(bundle))
        assert name.startswith("upload-")
        resolved, resolved_hash = registry.resolve(name)
        assert resolved_hash == hash_trace_bundle(bundle)
        # Re-uploading the identical bundle reuses the spooled copy.
        assert registry.store_inline(bundle_to_json(bundle)) == name

    def test_spooled_upload_resolves_in_a_fresh_registry(self, serving_trace_dir,
                                                         tmp_path):
        # A worker fleet started *before* a server spooled an upload must
        # still resolve it: unknown upload-* names fall back to the spool.
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(serving_trace_dir)
        spool = tmp_path / "spool"
        spool.mkdir()
        name = TraceRegistry(spool_dir=spool).store_inline(bundle_to_json(bundle))
        fresh = TraceRegistry(spool_dir=spool)
        resolved, resolved_hash = fresh.resolve(name)
        assert resolved_hash == hash_trace_bundle(bundle)

    def test_uploads_refused_without_spool(self, serving_trace_dir):
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(serving_trace_dir)
        registry = TraceRegistry(spool_dir=None)
        with pytest.raises(ProtocolError) as excinfo:
            registry.store_inline(bundle_to_json(bundle))
        assert excinfo.value.code == CODE_BAD_REQUEST


class TestServiceEndToEnd:
    def test_concurrent_identical_submissions_evaluate_once(self, manual_app):
        """The acceptance path: dedupe, one evaluation, shared warm cache."""
        app = manual_app
        responses = []
        lock = threading.Lock()

        def submit() -> None:
            response = ServiceClient(app.url).submit(SWEEP_BODY)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # Both clients were admitted to the same job; exactly one queued it.
        job_ids = {response["job"]["job_id"] for response in responses}
        assert len(job_ids) == 1
        assert sorted(r["deduped"] for r in responses) == [False, True]
        assert app.store.queue_depth() == 1

        worker = _drain(app)
        assert worker.jobs_processed == 1

        job_id = job_ids.pop()
        client = ServiceClient(app.url)
        first = client.result(job_id)
        second = client.result(job_id)
        assert first == second
        result = validate_result_payload(first["result"])
        assert result["cache"]["hit_rate"] == 0.0
        assert [row["label"] for row in result["ranked"]]

        # An identical resubmission after completion re-enqueues and is
        # answered entirely from the shared on-disk cache.
        rerun = client.submit(SWEEP_BODY)
        assert rerun["job"]["job_id"] == job_id
        assert not rerun["deduped"]
        _drain(app)
        warm = validate_result_payload(client.result(job_id)["result"])
        assert warm["cache"]["hit_rate"] == 1.0
        assert all(row["from_cache"] for row in warm["scenarios"])
        assert [row["label"] for row in warm["ranked"]] == \
            [row["label"] for row in result["ranked"]]

        # reuse=True short-circuits to the finished record without a rerun.
        reused = client.submit(dict(SWEEP_BODY, reuse=True))
        assert reused["deduped"]
        assert reused["job"]["state"] == STATE_DONE

    def test_equivalent_spellings_dedupe_to_one_job(self, manual_app):
        client = ServiceClient(manual_app.url)
        explicit = client.submit({"kind": "sweep", "trace": "canned",
                                  "targets": ["serving:batch=4"]})
        detected = client.submit({"kind": "sweep", "trace": "canned",
                                  "targets": ["batch=4"]})
        assert detected["job"]["job_id"] == explicit["job"]["job_id"]
        assert detected["deduped"]

    def test_hardware_spellings_dedupe_to_one_job(self, manual_app):
        # parse_target canonicalises before the payload is hashed, so the
        # prefixed and the bare spelling of one GPU are one job.
        client = ServiceClient(manual_app.url)
        explicit = client.submit({"kind": "predict", "trace": "canned",
                                  "target": "hardware:H200-SXM"})
        detected = client.submit({"kind": "predict", "trace": "canned",
                                  "target": "gpu=h200_sxm"})
        assert detected["job"]["job_id"] == explicit["job"]["job_id"]
        assert detected["deduped"]

    def test_hardware_axis_sweeps_through_the_service(self, manual_app):
        client = ServiceClient(manual_app.url)
        submitted = client.submit({"kind": "sweep", "trace": "canned",
                                   "targets": ["batch=8", "gpu=H200-SXM",
                                               "batch=8,gpu=H200-SXM"]})
        _drain(manual_app)
        result = validate_result_payload(
            client.result(submitted["job"]["job_id"])["result"])
        labels = {row["label"] for row in result["scenarios"]}
        # The hardware axis crosses the grid: each workload config shows
        # up on the profiled part and on the hypothetical one.
        assert {"base", "batch=8", "gpu=H200-SXM",
                "batch=8+gpu=H200-SXM"} <= labels

    def test_live_workers_complete_a_predict_job(self, serving_trace_dir, tmp_path):
        with ServiceApp(tmp_path / "svc", workers=1,
                        traces={"canned": serving_trace_dir}) as app:
            client = ServiceClient(app.url)
            submitted = client.submit({"kind": "predict", "trace": "canned",
                                       "target": "batch=4", "slo_ms": 500})
            job = client.wait(submitted["job"]["job_id"], timeout=120.0)
            assert job["state"] == STATE_DONE
            result = validate_result_payload(
                client.result(job["job_id"])["result"])
            assert result["target"] == {"kind": "serving", "label": "batch=4"}
            # A fixed-batch serving episode has no continuous-batching
            # stream, so the per-request block is explicitly null.
            assert "serving" in result
            assert result["iteration_time_us"] > 0

    def test_inline_bundle_upload_runs_like_a_named_trace(self, serving_trace_dir,
                                                          manual_app):
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(serving_trace_dir)
        client = ServiceClient(manual_app.url)
        submitted = client.submit({"kind": "sweep",
                                   "bundle": bundle_to_json(bundle),
                                   "targets": ["batch=4"]})
        assert submitted["job"]["trace"].startswith("upload-")
        _drain(manual_app)
        result = client.result(submitted["job"]["job_id"])["result"]
        assert validate_result_payload(result)["kind"] == "sweep"

    def test_cancel_and_status_lifecycle(self, manual_app):
        client = ServiceClient(manual_app.url)
        submitted = client.submit(SWEEP_BODY)
        job_id = submitted["job"]["job_id"]
        assert client.job(job_id)["state"] == STATE_QUEUED
        cancelled = client.cancel(job_id)
        assert cancelled["state"] == STATE_CANCELLED
        assert manual_app.store.queue_depth() == 0

    def test_health_and_metrics_endpoints(self, manual_app):
        client = ServiceClient(manual_app.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == PROTOCOL_VERSION
        assert health["traces"] == ["canned"]
        client.submit(SWEEP_BODY)
        metrics = client.metrics()
        assert metrics["counters"]["service.jobs.submitted"] == 1.0
        assert metrics["gauges"]["service.queue_depth"] == 1.0
        _drain(manual_app)
        metrics = ServiceClient(manual_app.url).metrics()
        assert metrics["counters"]["service.jobs.completed"] == 1.0
        assert metrics["histograms"]["service.job_latency_ms"]["count"] == 1


class TestServiceErrors:
    def _submit_error(self, app: ServiceApp, body: dict) -> ServiceError:
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(app.url).submit(body)
        return excinfo.value

    def test_unknown_trace_is_404(self, manual_app):
        error = self._submit_error(manual_app, dict(SWEEP_BODY, trace="nope"))
        assert error.code == CODE_UNKNOWN_TRACE
        assert error.status == 404
        assert "canned" in str(error)

    def test_wrong_version_is_400(self, manual_app):
        error = self._submit_error(manual_app, dict(SWEEP_BODY, version=99))
        assert error.code == CODE_UNSUPPORTED_VERSION
        assert error.status == 400

    def test_invalid_spec_refused_at_admission(self, manual_app):
        # 4x1x1 needs more tensor parallelism than the traced base has.
        error = self._submit_error(
            manual_app, {"kind": "sweep", "trace": "canned",
                         "targets": ["4x1x1"]})
        assert error.code == CODE_INVALID_SPEC
        assert error.status == 400

    def test_malformed_target_refused_at_admission(self, manual_app):
        error = self._submit_error(
            manual_app, {"kind": "predict", "trace": "canned",
                         "target": "serving:frobnicate"})
        assert error.code == CODE_UNSUPPORTED_TARGET

    def test_unknown_job_and_premature_result(self, manual_app):
        client = ServiceClient(manual_app.url)
        with pytest.raises(ServiceError) as excinfo:
            client.job("f" * 32)
        assert excinfo.value.code == CODE_UNKNOWN_JOB
        submitted = client.submit(SWEEP_BODY)
        with pytest.raises(ServiceError) as excinfo:
            client.result(submitted["job"]["job_id"])
        assert excinfo.value.code == CODE_JOB_NOT_DONE
        assert excinfo.value.status == 409

    def test_unroutable_paths_are_bad_request(self, manual_app):
        client = ServiceClient(manual_app.url)
        for method, path in (("GET", "/v2/anything"), ("POST", "/v1/nope")):
            with pytest.raises(ServiceError) as excinfo:
                client._request(method, path, {} if method == "POST" else None)
            assert excinfo.value.code == CODE_BAD_REQUEST

    def test_invalid_json_body_is_bad_request(self, manual_app):
        import urllib.error
        import urllib.request
        request = urllib.request.Request(
            manual_app.url + "/v1/jobs", data=b"{torn", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"]["code"] == CODE_BAD_REQUEST

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError) as excinfo:
            client.health()
        assert excinfo.value.code == "unavailable"


class TestWorkerFailures:
    def _inject(self, app: ServiceApp, payload: dict, kind: str = "sweep"):
        """Enqueue a payload bypassing admission validation."""
        _, bundle_hash = app.registry.resolve("canned")
        record = JobRecord(
            job_id=job_id_for(bundle_hash, kind, payload), kind=kind,
            trace="canned", bundle_hash=bundle_hash, payload=payload)
        record, _ = app.store.submit(record)
        return record

    def _base(self, app: ServiceApp) -> dict:
        from repro.service.server import base_from_metadata
        bundle, _ = app.registry.resolve("canned")
        return base_from_metadata(bundle.metadata, {})

    def test_invalid_spec_fails_job_with_typed_code(self, manual_app):
        base = self._base(manual_app)
        record = self._inject(manual_app, {
            "base": base, "spec": {"base": base, "parallelism": ["4x1x1"]}})
        _drain(manual_app)
        failed = manual_app.store.get(record.job_id)
        assert failed.state == STATE_FAILED
        assert failed.error["code"] == CODE_INVALID_SPEC
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(manual_app.url).result(record.job_id)
        assert excinfo.value.code == CODE_JOB_FAILED
        assert excinfo.value.status == 409
        assert CODE_INVALID_SPEC in str(excinfo.value)

    def test_unknown_model_fails_predict_with_typed_code(self, manual_app):
        record = self._inject(
            manual_app, {"base": self._base(manual_app), "target": "model:gpt9"},
            kind="predict")
        _drain(manual_app)
        failed = manual_app.store.get(record.job_id)
        assert failed.state == STATE_FAILED
        assert failed.error["code"] == CODE_UNSUPPORTED_TARGET
        metrics = manual_app.metrics.snapshot()
        assert metrics["counters"]["service.jobs.failed"] == 1.0

    def test_worker_survives_a_failed_job(self, manual_app):
        self._inject(manual_app, {"base": self._base(manual_app),
                                  "target": "model:gpt9"}, kind="predict")
        ServiceClient(manual_app.url).submit(SWEEP_BODY)
        worker = _drain(manual_app, jobs=2)
        assert worker.jobs_processed == 2
        states = {record.state for record in manual_app.store.jobs()}
        assert states == {STATE_FAILED, STATE_DONE}


class TestWorkerCacheSharing:
    def test_studies_are_memoized_per_bundle_and_base(self, manual_app):
        client = ServiceClient(manual_app.url)
        client.submit(SWEEP_BODY)
        worker = _drain(manual_app)
        client.submit(dict(SWEEP_BODY, targets=["batch=8"]))
        for _ in range(1):
            assert worker.run_once()
        assert len(worker._studies) == 1
        assert worker.jobs_processed == 2

    def test_corrupted_cache_entries_never_fail_a_job(self, manual_app):
        from pathlib import Path
        client = ServiceClient(manual_app.url)
        submitted = client.submit(SWEEP_BODY)
        _drain(manual_app)
        job_id = submitted["job"]["job_id"]
        entries = list(Path(manual_app.cache_root).glob("*/*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{torn", encoding="utf-8")
        client.submit(SWEEP_BODY)
        _drain(manual_app)
        result = validate_result_payload(client.result(job_id)["result"])
        assert result["cache"]["hit_rate"] == 0.0
        assert not any(row["from_cache"] for row in result["scenarios"])

    def test_cache_block_lands_on_the_job_status(self, manual_app):
        client = ServiceClient(manual_app.url)
        submitted = client.submit(SWEEP_BODY)
        _drain(manual_app)
        job = client.job(submitted["job"]["job_id"])
        assert job["cache"]["lookups"] == job["cache"]["hits"] + job["cache"]["misses"]


class TestServiceCli:
    def test_submit_round_trip_through_main(self, manual_app, capsys):
        from repro.cli import main
        worker_done = threading.Event()

        def drain_soon() -> None:
            worker = Worker(manual_app.store, manual_app.registry,
                            manual_app.cache_root, metrics=manual_app.metrics)
            while not worker_done.is_set():
                if worker.run_once():
                    worker_done.set()
                    return
                worker_done.wait(0.05)

        thread = threading.Thread(target=drain_soon)
        thread.start()
        try:
            code = main(["submit", "--url", manual_app.url, "--trace", "canned",
                         "--target", "serving:batch=4", "--whatif", "gemm:2"])
        finally:
            worker_done.set()
            thread.join()
        assert code == 0
        output = capsys.readouterr().out
        assert "evaluated" in output
        assert "rank" in output

    def test_submit_unknown_trace_exits_2(self, manual_app, capsys):
        from repro.cli import main
        code = main(["submit", "--url", manual_app.url, "--trace", "nope",
                     "--target", "batch=4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown-trace" in err

    def test_submit_unreachable_server_exits_2(self, capsys):
        from repro.cli import main
        code = main(["submit", "--url", "http://127.0.0.1:9", "--trace", "x",
                     "--target", "batch=4", "--timeout", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_submit_no_wait_returns_queued(self, manual_app, capsys):
        from repro.cli import main
        code = main(["submit", "--url", manual_app.url, "--trace", "canned",
                     "--target", "batch=4", "--no-wait"])
        assert code == 0
        assert "queued" in capsys.readouterr().out


class TestServeLifecycle:
    def test_serve_forever_drains_on_sigterm(self, tmp_path, serving_trace_dir):
        app = ServiceApp(tmp_path / "svc", workers=1,
                         traces={"canned": serving_trace_dir})
        old_term = signal.getsignal(signal.SIGTERM)
        old_int = signal.getsignal(signal.SIGINT)
        client = ServiceClient(app.url)

        def fire_once_serving() -> None:
            deadline = time.time() + 30.0
            while time.time() < deadline:
                try:
                    if client.health()["status"] == "ok":
                        break
                except ServiceError:
                    time.sleep(0.02)
            os.kill(os.getpid(), signal.SIGTERM)

        killer = threading.Thread(target=fire_once_serving)
        killer.start()
        try:
            # Blocks in the real CLI loop (signal handlers installed)
            # until the SIGTERM from the helper thread drains it.
            assert app.serve_forever() == 0
        finally:
            killer.join(timeout=30.0)
            signal.signal(signal.SIGTERM, old_term)
            signal.signal(signal.SIGINT, old_int)

    def test_cli_serve_wires_the_app(self, tmp_path, serving_trace_dir,
                                     monkeypatch, capsys):
        from repro.cli import main
        seen: dict[str, object] = {}

        def fake_serve_forever(self, install_signals=True):
            seen["workers"] = len(self.workers)
            seen["traces"] = self.registry.names()
            self._server.server_close()
            return 0

        monkeypatch.setattr(ServiceApp, "serve_forever", fake_serve_forever)
        code = main(["serve", "--root", str(tmp_path / "svc"), "--port", "0",
                     "--trace", f"canned={serving_trace_dir}", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "listening on" in out
        assert "traces=canned" in out
        assert seen == {"workers": 2, "traces": ["canned"]}

    def test_cli_serve_rejects_bad_trace_registration(self, tmp_path, capsys):
        from repro.cli import main
        code = main(["serve", "--root", str(tmp_path / "svc"), "--port", "0",
                     "--trace", "no-equals-sign"])
        assert code == 2
        assert "expected NAME=DIR" in capsys.readouterr().err


def _journal_events(store: JobStore, event: str, job_id: str) -> list[dict]:
    return [line for line in store.journal_events()
            if line["event"] == event and line["job_id"] == job_id]


@pytest.fixture
def webhook_receiver():
    """A local HTTP sink recording every JSON body POSTed to it."""
    from http.server import BaseHTTPRequestHandler, HTTPServer

    received: list[dict] = []
    got_one = threading.Event()

    class Sink(BaseHTTPRequestHandler):
        def do_POST(self):
            length = int(self.headers.get("Content-Length") or 0)
            received.append(json.loads(self.rfile.read(length)))
            got_one.set()
            self.send_response(200)
            self.send_header("Content-Length", "0")
            self.end_headers()

        def log_message(self, *args):
            pass

    server = HTTPServer(("127.0.0.1", 0), Sink)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://127.0.0.1:{server.server_address[1]}/hook"
    try:
        yield url, received, got_one
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)


class TestLeases:
    def test_claim_writes_a_lease_with_a_deadline(self, tmp_path):
        store = JobStore(tmp_path, lease_seconds=30.0)
        record, _ = store.submit(_record())
        store.claim_next("w")
        lease = store.read_lease(record.job_id)
        assert lease["worker"] == "w"
        assert lease["pid"] == os.getpid()
        assert lease["hostname"]
        assert lease["deadline_unix"] > time.time() + 20.0
        assert store.active_leases()[0]["job_id"] == record.job_id

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        store = JobStore(tmp_path, lease_seconds=0.5)
        record, _ = store.submit(_record())
        running = store.claim_next("w")
        before = store.read_lease(record.job_id)["deadline_unix"]
        time.sleep(0.05)
        assert store.heartbeat(running)
        assert store.read_lease(record.job_id)["deadline_unix"] > before

    def test_heartbeat_refuses_a_lease_it_no_longer_owns(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())
        running = store.claim_next("w")
        # Another process re-leased the job out from under this worker.
        foreign = dict(store.read_lease(record.job_id),
                       worker="other", pid=os.getpid() + 1)
        (store.claims_dir / f"{record.job_id}.claim").write_text(
            json.dumps(foreign), encoding="utf-8")
        assert not store.heartbeat(running)
        assert store.read_lease(record.job_id)["worker"] == "other"

    def test_expired_lease_requeues_with_attempts_bumped(self, tmp_path):
        """The kill-the-worker core: a dead claimant's job is recovered."""
        zombie = JobStore(tmp_path, lease_seconds=0.2)
        record, _ = zombie.submit(_record())
        claimed = zombie.claim_next("zombie")
        assert claimed.state == STATE_RUNNING
        time.sleep(0.3)  # the zombie never heartbeats: the lease expires

        survivor = JobStore(tmp_path, lease_seconds=0.2)
        reclaimed = survivor.claim_next("survivor")
        assert reclaimed is not None
        assert reclaimed.job_id == record.job_id
        assert reclaimed.worker == "survivor"
        assert reclaimed.attempts == 2
        assert survivor.lease_expirations == 1
        expired = _journal_events(survivor, EVENT_LEASE_EXPIRED, record.job_id)
        assert expired and expired[0]["worker"] == "zombie"

        done = survivor.mark_done(reclaimed, {"ok": True})
        assert done.state == STATE_DONE
        assert done.attempts == 2

    def test_max_attempts_exhaustion_fails_as_worker_lost(self, tmp_path):
        store = JobStore(tmp_path, lease_seconds=0.1, max_attempts=2)
        record, _ = store.submit(_record())
        store.claim_next("w1")
        time.sleep(0.15)
        second = store.claim_next("w2")  # reclaim + re-claim: attempt 2 of 2
        assert second.attempts == 2
        time.sleep(0.15)
        store.refresh()  # second expiry exhausts max_attempts
        failed = store.get(record.job_id)
        assert failed.state == STATE_FAILED
        assert failed.error["code"] == CODE_WORKER_LOST
        assert "w2" in failed.error["message"]
        assert store.lease_expirations == 2
        assert len(_journal_events(store, EVENT_LEASE_EXPIRED,
                                   record.job_id)) == 2

    def test_stale_finisher_cannot_clobber_the_retry(self, tmp_path):
        stalled = JobStore(tmp_path, lease_seconds=0.1)
        record, _ = stalled.submit(_record())
        old_claim = stalled.claim_next("stalled")
        time.sleep(0.15)
        survivor = JobStore(tmp_path, lease_seconds=30.0)
        retry = survivor.claim_next("survivor")
        assert retry.attempts == 2
        # The stalled worker wakes up and tries to finish attempt 1.
        outcome = stalled.mark_done(old_claim, {"stale": True})
        assert outcome.state == STATE_RUNNING  # the retry, untouched
        assert outcome.attempts == 2
        # ... and it did not strip the survivor's lease.
        assert survivor.read_lease(record.job_id)["worker"] == "survivor"
        done = survivor.mark_done(retry, {"ok": True})
        assert done.result == {"ok": True}

    def test_stale_finisher_cannot_resurrect_a_worker_lost_job(self, tmp_path):
        """Regression: a worker-lost FAILED record keeps ``attempts``
        unchanged, so the attempts guard alone let a stalled-but-alive
        worker flip failed → done; terminal records must stay final."""
        store = JobStore(tmp_path, lease_seconds=0.1, max_attempts=1)
        record, _ = store.submit(_record())
        claimed = store.claim_next("stalled")
        time.sleep(0.15)
        store.refresh()  # the expiry exhausts max_attempts=1
        failed = store.get(record.job_id)
        assert failed.state == STATE_FAILED
        assert failed.error["code"] == CODE_WORKER_LOST
        # The stalled worker wakes up and completes its run anyway.
        outcome = store.mark_done(claimed, {"late": True})
        assert outcome.state == STATE_FAILED  # discarded, not applied
        current = store.get(record.job_id)
        assert current.state == STATE_FAILED
        assert current.result is None
        assert current.error["code"] == CODE_WORKER_LOST
        assert _journal_events(store, "stale_finish", record.job_id)

    def test_refresh_skips_rereading_terminal_records(self, tmp_path,
                                                      monkeypatch):
        store = JobStore(tmp_path)
        for tag in ("a", "b", "c"):
            store.submit(_record(tag * 32, submitted_unix=1.0))
            store.mark_done(store.claim_next("w"), {"ok": tag})
        store.submit(_record("d" * 32, submitted_unix=2.0))
        reads = []
        original = JobStore._read

        def counting_read(self, path):
            reads.append(path.name)
            return original(self, path)

        monkeypatch.setattr(JobStore, "_read", counting_read)
        # Fleet polling is O(non-terminal jobs): the three immutable done
        # records are served from the index, only the queued one re-reads.
        store.refresh()
        assert reads == ["d" * 32 + ".json"]

    def test_wait_for_terminal_returns_on_in_process_finish(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = store.submit(_record())

        def finish_soon() -> None:
            time.sleep(0.2)
            store.mark_done(store.claim_next("w"), {"ok": True})

        finisher = threading.Thread(target=finish_soon)
        started = time.monotonic()
        finisher.start()
        try:
            done = store.wait_for_terminal(record.job_id, timeout=30.0)
        finally:
            finisher.join()
        elapsed = time.monotonic() - started
        assert done.state == STATE_DONE
        assert 0.15 <= elapsed < 5.0


class TestWorkerFleetRecovery:
    @pytest.fixture
    def recovery_app(self, serving_trace_dir, tmp_path):
        """A no-worker app whose store reclaims after a 0.3s lease."""
        with ServiceApp(tmp_path / "svc", workers=0, lease_seconds=0.3,
                        traces={"canned": serving_trace_dir}) as app:
            yield app

    def test_killed_worker_job_is_rerun_to_completion(self, recovery_app):
        """Acceptance path: SIGKILLed claimant → survivor re-runs the job."""
        app = recovery_app
        client = ServiceClient(app.url)
        submitted = client.submit(SWEEP_BODY)
        job_id = submitted["job"]["job_id"]

        # A separate store on the same root claims the job and then "dies"
        # without heartbeating — exactly what a SIGKILLed `repro-lumos
        # work` process leaves behind: a running record and a stale lease.
        zombie = JobStore(app.root, lease_seconds=0.3)
        assert zombie.claim_next("zombie").job_id == job_id
        assert client.job(job_id)["state"] == STATE_RUNNING
        time.sleep(0.4)

        # The surviving in-process worker reclaims and completes it.
        _drain(app)
        job = client.job(job_id)
        assert job["state"] == STATE_DONE
        assert job["attempts"] == 2
        assert _journal_events(app.store, EVENT_LEASE_EXPIRED, job_id)
        metrics = client.metrics()
        assert metrics["counters"]["service.leases.expired"] >= 1.0
        result = validate_result_payload(client.result(job_id)["result"])
        assert result["kind"] == "sweep"

    def test_metricz_alone_recovers_an_expired_lease(self, recovery_app):
        # Even with every worker parked, scraping /v1/metricz refreshes
        # the store and requeues the abandoned job.
        app = recovery_app
        client = ServiceClient(app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]
        JobStore(app.root, lease_seconds=0.3).claim_next("zombie")
        time.sleep(0.4)
        metrics = client.metrics()
        assert metrics["counters"]["service.leases.expired"] >= 1.0
        job = client.job(job_id)
        assert job["state"] == STATE_QUEUED
        assert job["attempts"] == 2

    def test_fleet_process_drains_a_shared_root(self, recovery_app,
                                                serving_trace_dir):
        app = recovery_app
        client = ServiceClient(app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]
        fleet = WorkerFleet(app.root, traces={"canned": serving_trace_dir},
                            cache_root=app.cache_root, workers=1,
                            lease_seconds=30.0)
        stop = threading.Event()
        runner = threading.Thread(target=fleet.run, args=(stop,))
        runner.start()
        try:
            job = client.wait(job_id, timeout=120.0)
        finally:
            stop.set()
            runner.join(timeout=30.0)
        assert job["state"] == STATE_DONE
        assert fleet.jobs_processed == 1
        assert not runner.is_alive()

    def test_worker_lost_failure_delivers_the_webhook(
            self, serving_trace_dir, tmp_path, webhook_receiver):
        """Regression: the worker-lost terminal transition is produced by
        a reclaim, not a worker — subscribers must still hear about it."""
        url, received, got_one = webhook_receiver
        with ServiceApp(tmp_path / "svc", workers=0, lease_seconds=0.2,
                        max_attempts=1, webhook_hosts=("*",),
                        traces={"canned": serving_trace_dir}) as app:
            client = ServiceClient(app.url)
            job_id = client.submit(
                dict(SWEEP_BODY, webhook=url))["job"]["job_id"]
            zombie = JobStore(app.root, lease_seconds=0.2)
            assert zombie.claim_next("zombie").job_id == job_id
            time.sleep(0.3)
            client.metrics()  # the metricz refresh reclaims → worker-lost
            assert got_one.wait(timeout=30.0)
            delivered = received[0]["job"]
            assert delivered["job_id"] == job_id
            assert delivered["state"] == STATE_FAILED
            assert delivered["error"]["code"] == CODE_WORKER_LOST
            # The delivery thread journals *after* the POST returns.
            deadline = time.time() + 10.0
            events = []
            while time.time() < deadline and not events:
                events = _journal_events(app.store, "webhook_delivered", job_id)
                time.sleep(0.02)
            assert events and events[0]["url"] == url

    def test_cli_work_wires_the_fleet(self, tmp_path, serving_trace_dir,
                                      monkeypatch, capsys):
        from repro.cli import main
        seen: dict[str, object] = {}

        def fake_run(self, stop=None, install_signals=False):
            seen["workers"] = len(self.workers)
            seen["lease"] = self.store.lease_seconds
            seen["signals"] = install_signals
            return 0

        monkeypatch.setattr(WorkerFleet, "run", fake_run)
        code = main(["work", "--root", str(tmp_path / "svc"),
                     "--trace", f"canned={serving_trace_dir}",
                     "--workers", "2", "--lease-seconds", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "worker fleet draining" in out
        assert seen == {"workers": 2, "lease": 5.0, "signals": True}


class TestEventDrivenCompletion:
    def test_wait_param_long_polls_until_terminal(self, manual_app):
        client = ServiceClient(manual_app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]

        def drain_soon() -> None:
            time.sleep(0.3)
            _drain(manual_app)

        drainer = threading.Thread(target=drain_soon)
        started = time.monotonic()
        drainer.start()
        try:
            job = client.job(job_id, wait=30.0)
        finally:
            drainer.join()
        assert job["state"] == STATE_DONE
        assert time.monotonic() - started >= 0.25

    def test_wait_param_expires_with_the_job_still_queued(self, manual_app):
        client = ServiceClient(manual_app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]
        job = client.job(job_id, wait=0.2)
        assert job["state"] == STATE_QUEUED

    def test_bad_wait_param_is_bad_request(self, manual_app):
        client = ServiceClient(manual_app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", f"/v1/jobs/{job_id}?wait=soon")
        assert excinfo.value.code == CODE_BAD_REQUEST

    def test_webhook_fires_on_completion(self, manual_app, webhook_receiver):
        url, received, got_one = webhook_receiver
        client = ServiceClient(manual_app.url)
        job_id = client.submit(dict(SWEEP_BODY, webhook=url))["job"]["job_id"]
        _drain(manual_app)
        assert got_one.wait(timeout=30.0)
        delivered = received[0]["job"]
        assert delivered["job_id"] == job_id
        assert delivered["state"] == STATE_DONE
        events = _journal_events(manual_app.store, "webhook_delivered", job_id)
        assert events and events[0]["url"] == url

    def test_webhook_fires_on_cancel(self, manual_app, webhook_receiver):
        url, received, got_one = webhook_receiver
        client = ServiceClient(manual_app.url)
        job_id = client.submit(dict(SWEEP_BODY, webhook=url))["job"]["job_id"]
        client.cancel(job_id)
        assert got_one.wait(timeout=30.0)
        assert received[0]["job"]["state"] == STATE_CANCELLED

    def test_webhook_failure_is_journaled_not_raised(self, manual_app):
        client = ServiceClient(manual_app.url)
        job_id = client.submit(
            dict(SWEEP_BODY, webhook="http://127.0.0.1:9/hook"))["job"]["job_id"]
        _drain(manual_app)
        record = manual_app.store.get(job_id)
        assert record.state == STATE_DONE
        assert not deliver_webhook(manual_app.store, record,
                                   metrics=manual_app.metrics,
                                   tries=2, backoff=0.01, timeout=1.0)
        events = _journal_events(manual_app.store, "webhook_failed", job_id)
        assert events and "error" in events[0]
        snapshot = manual_app.metrics.snapshot()
        assert snapshot["counters"]["service.webhooks.failed"] >= 1.0

    def test_webhook_survives_dedupe_with_first_one_winning(self, manual_app):
        client = ServiceClient(manual_app.url)
        first = client.submit(dict(SWEEP_BODY, webhook="http://a.example/h"))
        second = client.submit(dict(SWEEP_BODY, webhook="http://b.example/h"))
        assert second["deduped"]
        assert first["job"]["job_id"] == second["job"]["job_id"]
        record = manual_app.store.get(first["job"]["job_id"])
        assert record.webhook == "http://a.example/h"


class TestWebhookPolicy:
    """Webhooks are POSTs from the service's network: off by default."""

    @pytest.fixture
    def strict_app(self, serving_trace_dir, tmp_path):
        """A server with the default (no-webhooks) policy."""
        with ServiceApp(tmp_path / "svc", workers=0,
                        traces={"canned": serving_trace_dir}) as app:
            yield app

    def test_webhooks_are_refused_by_default(self, strict_app):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(strict_app.url).submit(
                dict(SWEEP_BODY, webhook="http://169.254.169.254/latest"))
        assert excinfo.value.code == CODE_BAD_REQUEST
        assert excinfo.value.status == 400
        assert "--allow-webhooks" in str(excinfo.value)
        # The submission was refused outright, never admitted.
        assert strict_app.store.queue_depth() == 0

    def test_webhook_host_allowlist(self, serving_trace_dir, tmp_path):
        with ServiceApp(tmp_path / "svc", workers=0,
                        webhook_hosts=("hooks.example",),
                        traces={"canned": serving_trace_dir}) as app:
            client = ServiceClient(app.url)
            admitted = client.submit(
                dict(SWEEP_BODY, webhook="https://HOOKS.example/done"))
            assert admitted["job"]["webhook"] == "https://HOOKS.example/done"
            with pytest.raises(ServiceError) as excinfo:
                client.submit(
                    dict(SWEEP_BODY, webhook="http://127.0.0.1:9/hook"))
            assert excinfo.value.code == CODE_BAD_REQUEST
            assert "allowlist" in str(excinfo.value)

    def test_strict_server_skips_delivery_of_foreign_records(
            self, strict_app, webhook_receiver):
        # A laxer server sharing the root admitted a webhook-carrying
        # record; the strict server's own policy still gates delivery.
        url, received, got_one = webhook_receiver
        _, bundle_hash = strict_app.registry.resolve("canned")
        record = JobRecord(job_id="f" * 32, kind="sweep", trace="canned",
                           bundle_hash=bundle_hash, payload={"x": 1},
                           webhook=url)
        strict_app.store.submit(record)
        strict_app.store.cancel(record.job_id)
        assert not got_one.wait(timeout=0.5)
        assert not received
        assert not _journal_events(strict_app.store, "webhook_delivered",
                                   record.job_id)

    def test_cli_serve_webhook_flags(self, tmp_path, monkeypatch):
        from repro.cli import main
        seen: dict[str, object] = {}

        def fake_serve_forever(self, install_signals=True):
            seen["hosts"] = self.webhook_hosts
            self._server.server_close()
            return 0

        monkeypatch.setattr(ServiceApp, "serve_forever", fake_serve_forever)
        assert main(["serve", "--root", str(tmp_path / "a"), "--port", "0"]) == 0
        assert seen["hosts"] is None
        assert main(["serve", "--root", str(tmp_path / "b"), "--port", "0",
                     "--allow-webhooks"]) == 0
        assert seen["hosts"] == ("*",)
        assert main(["serve", "--root", str(tmp_path / "c"), "--port", "0",
                     "--webhook-host", "hooks.example",
                     "--webhook-host", "other.example"]) == 0
        assert seen["hosts"] == ("hooks.example", "other.example")


class TestClientRetries:
    def test_get_retries_a_transient_network_error(self, manual_app,
                                                   monkeypatch):
        import urllib.request as urllib_request
        from urllib.error import URLError
        real = urllib_request.urlopen
        failures = {"left": 2}

        def flaky(request, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise URLError("connection dropped")
            return real(request, **kwargs)

        monkeypatch.setattr(urllib_request, "urlopen", flaky)
        assert ServiceClient(manual_app.url).health()["status"] == "ok"
        assert failures["left"] == 0

    def test_get_gives_up_after_capped_retries(self, manual_app, monkeypatch):
        import urllib.request as urllib_request
        from urllib.error import URLError
        calls = {"n": 0}

        def dead(request, **kwargs):
            calls["n"] += 1
            raise URLError("still down")

        monkeypatch.setattr(urllib_request, "urlopen", dead)
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(manual_app.url).health()
        assert excinfo.value.code == "unavailable"
        assert calls["n"] == 3

    def test_post_is_never_retried(self, manual_app, monkeypatch):
        import urllib.request as urllib_request
        from urllib.error import URLError
        calls = {"n": 0}

        def dead(request, **kwargs):
            calls["n"] += 1
            raise URLError("still down")

        monkeypatch.setattr(urllib_request, "urlopen", dead)
        with pytest.raises(ServiceError):
            ServiceClient(manual_app.url).submit(SWEEP_BODY)
        assert calls["n"] == 1

    def test_wait_backs_off_against_a_non_longpoll_server(self, manual_app,
                                                          monkeypatch):
        client = ServiceClient(manual_app.url)
        job_id = client.submit(SWEEP_BODY)["job"]["job_id"]
        # Simulate a server that ignores ?wait= by answering instantly.
        monkeypatch.setattr(
            ServiceClient, "job",
            lambda self, job_id, wait=None: {"state": STATE_QUEUED})
        sleeps: list[float] = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        with pytest.raises(ServiceError) as excinfo:
            client.wait(job_id, timeout=0.2, poll_interval=0.05)
        assert excinfo.value.code == "timeout"
        # Poll intervals doubled instead of hammering a fixed 0.1s
        # (later sleeps are clamped to the remaining deadline).
        assert sleeps[0] == pytest.approx(0.05)
        assert sleeps[1] == pytest.approx(0.1)


class TestIdleFleetMetrics:
    def test_idle_workers_report_zero_busy(self, serving_trace_dir, tmp_path):
        """Regression: polling an empty queue is idleness, not work."""
        with ServiceApp(tmp_path / "svc", workers=2,
                        traces={"canned": serving_trace_dir}) as app:
            time.sleep(0.3)  # plenty of empty poll cycles
            metrics = ServiceClient(app.url).metrics()
            assert metrics["gauges"]["service.busy_workers"] == 0.0
            assert metrics["gauges"]["service.queue_depth"] == 0.0

    def test_queue_depth_returns_to_zero_after_drain(self, manual_app):
        client = ServiceClient(manual_app.url)
        client.submit(SWEEP_BODY)
        assert client.metrics()["gauges"]["service.queue_depth"] == 1.0
        _drain(manual_app)
        metrics = client.metrics()
        assert metrics["gauges"]["service.queue_depth"] == 0.0
        # The worker's own gauge update agrees with the store-backed one.
        assert manual_app.metrics.snapshot()[
            "gauges"]["service.queue_depth"] == 0.0

    def test_busy_gauge_rises_only_while_a_job_runs(self, manual_app):
        client = ServiceClient(manual_app.url)
        client.submit(SWEEP_BODY)
        observed: list[float] = []
        worker = Worker(manual_app.store, manual_app.registry,
                        manual_app.cache_root, metrics=manual_app.metrics)
        original = worker._evaluate

        def spying_evaluate(record):
            observed.append(manual_app.metrics.snapshot()[
                "gauges"]["service.busy_workers"])
            return original(record)

        worker._evaluate = spying_evaluate
        assert worker.run_once()
        assert observed == [1.0]
        assert manual_app.metrics.snapshot()[
            "gauges"]["service.busy_workers"] == 0.0

    def test_worker_liveness_gauge_is_exported(self, serving_trace_dir,
                                               tmp_path):
        with ServiceApp(tmp_path / "svc", workers=1,
                        traces={"canned": serving_trace_dir}) as app:
            deadline = time.time() + 10.0
            name = "service.worker.worker-0.alive_unix"
            while time.time() < deadline:
                gauges = app.metrics.snapshot()["gauges"]
                if gauges.get(name, 0.0) > 0.0:
                    break
                time.sleep(0.02)
            assert app.metrics.snapshot()["gauges"][name] > 0.0
