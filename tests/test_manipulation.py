"""Tests for graph manipulation (templates, synthesis, DP/PP/architecture)."""

import pytest

from repro.core.graph_builder import GraphBuilder
from repro.core.manipulation import (
    change_architecture,
    extract_iteration_template,
    scale_data_parallelism,
    scale_pipeline_parallelism,
    synthesize_graph,
)
from repro.core.metrics import absolute_relative_error_percent
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import simulate_graph
from repro.core.tasks import DependencyType, TaskKind
from repro.emulator.api import emulate
from repro.hardware.cluster import ClusterSpec
from repro.workload.parallelism import ParallelismConfig
from repro.workload.pipeline import stage_layers
from tests.conftest import tiny_model

_PREDICTION_TOLERANCE_PERCENT = 12.0


@pytest.fixture(scope="module")
def base_model():
    return tiny_model(n_layers=8)


@pytest.fixture(scope="module")
def base_parallel():
    return ParallelismConfig(2, 2, 2)


@pytest.fixture(scope="module")
def base_training(small_training):
    return small_training


@pytest.fixture(scope="module")
def base_graph(base_model, base_parallel, base_training):
    emulation = emulate(base_model, base_parallel, base_training, iterations=1, seed=101)
    return GraphBuilder().build(emulation.profiled)


@pytest.fixture(scope="module")
def perf_model(base_graph, base_parallel):
    return KernelPerfModel.calibrate(base_graph,
                                     ClusterSpec.for_world_size(base_parallel.world_size))


@pytest.fixture(scope="module")
def template(base_graph, base_model, base_parallel, base_training):
    return extract_iteration_template(base_graph, base_model, base_parallel, base_training)


def _measured_time(model, parallel, training, seed=111):
    return emulate(model, parallel, training, iterations=2, seed=seed).measured_iteration_time()


class TestTemplateExtraction:
    def test_layer_templates_cover_all_layers_and_phases(self, template, base_model):
        assert sorted(template.layer_forward) == list(range(base_model.n_layers))
        assert sorted(template.layer_backward) == list(range(base_model.n_layers))

    def test_layer_sequence_contains_tp_collectives(self, template):
        kernels = template.layer_template(0, "forward")
        assert any(k.comm_group == "tp" for k in kernels)
        assert any(k.op_class == "gemm" for k in kernels)

    def test_backward_has_more_kernels_than_forward(self, template):
        assert (len(template.layer_template(0, "backward"))
                > len(template.layer_template(0, "forward")))

    def test_embedding_head_and_optimizer_extracted(self, template):
        assert template.embedding_forward
        assert template.head_forward
        assert template.optimizer

    def test_samples_for_dp_and_pp_communication(self, template):
        assert template.dp_bucket_sample is not None
        assert template.pp_send_sample is not None
        assert template.pp_recv_sample is not None

    def test_unknown_layer_reuses_observed_template(self, template, base_model):
        beyond = template.layer_template(base_model.n_layers + 3, "forward")
        assert beyond == template.layer_template(3, "forward")

    def test_cpu_overheads_positive(self, template):
        assert template.cpu.launch_us > 0
        assert template.cpu.data_loader_us > 0

    def test_empty_graph_rejected(self, base_model, base_parallel, base_training):
        from repro.core.graph import ExecutionGraph
        with pytest.raises(ValueError):
            extract_iteration_template(ExecutionGraph(), base_model, base_parallel, base_training)


class TestSynthesis:
    def test_identity_synthesis_close_to_base_replay(self, base_graph, template, base_model,
                                                     base_parallel, perf_model):
        base_time = simulate_graph(base_graph).iteration_time_us
        synthesized = synthesize_graph(template, base_model, base_parallel, perf_model)
        synthesized_time = simulate_graph(synthesized).iteration_time_us
        assert absolute_relative_error_percent(synthesized_time, base_time) < 10.0

    def test_synthesized_graph_is_valid(self, template, base_model, base_parallel, perf_model):
        graph = synthesize_graph(template, base_model, base_parallel, perf_model)
        graph.validate()
        counts = graph.dependency_counts()
        assert counts[DependencyType.CPU_TO_GPU] > 0
        assert counts[DependencyType.GPU_INTER_STREAM] > 0

    def test_synthesized_graph_has_one_rank_per_stage(self, template, base_model, perf_model):
        target = ParallelismConfig(2, 4, 2)
        graph = synthesize_graph(template, base_model, target, perf_model)
        assert len(graph.ranks()) == 4

    def test_layers_partitioned_across_new_stages(self, template, base_model, perf_model):
        target = ParallelismConfig(2, 4, 2)
        graph = synthesize_graph(template, base_model, target, perf_model)
        for stage, rank in enumerate(graph.ranks()):
            expected = set(stage_layers(base_model.n_layers, 4, stage))
            observed = {t.layer for t in graph.gpu_tasks(rank) if t.layer is not None}
            assert observed == expected

    def test_tp_change_rejected(self, template, base_model, perf_model):
        with pytest.raises(NotImplementedError):
            synthesize_graph(template, base_model, ParallelismConfig(4, 2, 2), perf_model)


class TestDataParallelScaling:
    def test_prediction_tracks_directly_emulated_target(self, base_graph, base_model,
                                                        base_parallel, base_training, perf_model):
        graph = scale_data_parallelism(base_graph, base_parallel, 4, perf_model)
        predicted = simulate_graph(graph).iteration_time_us
        actual = _measured_time(base_model, base_parallel.with_changes(data_parallel=4),
                                base_training)
        assert absolute_relative_error_percent(predicted, actual) < _PREDICTION_TOLERANCE_PERCENT

    def test_only_dp_collectives_are_retimed(self, base_graph, base_parallel, perf_model):
        graph = scale_data_parallelism(base_graph, base_parallel, 8, perf_model)
        assert len(graph) == len(base_graph)
        for original, manipulated in zip(base_graph.task_list(), graph.task_list()):
            if original.kind == TaskKind.GPU and original.args.get("group") == "dp":
                assert manipulated.args["group_size"] == 8
            else:
                assert manipulated.duration == pytest.approx(original.duration)

    def test_scaling_up_dp_does_not_speed_up_iteration(self, base_graph, base_parallel, perf_model):
        base_time = simulate_graph(base_graph).iteration_time_us
        graph = scale_data_parallelism(base_graph, base_parallel, 16, perf_model)
        assert simulate_graph(graph).iteration_time_us >= base_time * 0.99

    def test_scaling_to_dp1_zeroes_dp_communication(self, base_graph, base_parallel, perf_model):
        graph = scale_data_parallelism(base_graph, base_parallel, 1, perf_model)
        dp_tasks = [t for t in graph.gpu_tasks() if t.args.get("group") == "dp"]
        assert dp_tasks and all(t.duration == 0.0 for t in dp_tasks)

    def test_invalid_degree_rejected(self, base_graph, base_parallel, perf_model):
        with pytest.raises(ValueError):
            scale_data_parallelism(base_graph, base_parallel, 0, perf_model)


class TestPipelineParallelScaling:
    def test_prediction_tracks_directly_emulated_target(self, base_graph, base_model,
                                                        base_parallel, base_training, perf_model):
        graph = scale_pipeline_parallelism(base_graph, base_model, base_parallel, base_training,
                                           4, perf_model)
        predicted = simulate_graph(graph).iteration_time_us
        actual = _measured_time(base_model, base_parallel.with_changes(pipeline_parallel=4),
                                base_training)
        assert absolute_relative_error_percent(predicted, actual) < _PREDICTION_TOLERANCE_PERCENT

    def test_combined_dp_and_pp_change(self, base_graph, base_model, base_parallel,
                                       base_training, perf_model):
        graph = scale_pipeline_parallelism(base_graph, base_model, base_parallel, base_training,
                                           4, perf_model, new_data_parallel=4)
        predicted = simulate_graph(graph).iteration_time_us
        target = ParallelismConfig(2, 4, 4)
        actual = _measured_time(base_model, target, base_training)
        assert absolute_relative_error_percent(predicted, actual) < _PREDICTION_TOLERANCE_PERCENT

    def test_new_stage_boundaries_get_p2p_pairs(self, base_graph, base_model, base_parallel,
                                                base_training, perf_model):
        graph = scale_pipeline_parallelism(base_graph, base_model, base_parallel, base_training,
                                           4, perf_model)
        groups = graph.collective_groups()
        # 4 stages, 2 micro-batches: activations cross 3 boundaries per
        # micro-batch and gradients cross them back.
        assert len(groups) == 2 * 3 * 2
        assert all(len(members) == 2 for members in groups.values())

    def test_invalid_degree_rejected(self, base_graph, base_model, base_parallel,
                                     base_training, perf_model):
        with pytest.raises(ValueError):
            scale_pipeline_parallelism(base_graph, base_model, base_parallel, base_training,
                                       0, perf_model)


class TestArchitectureChange:
    def test_layer_count_change_tracks_target(self, base_graph, base_model, base_parallel,
                                              base_training, perf_model):
        target_model = base_model.with_changes(name="tiny-deeper", n_layers=12)
        graph = change_architecture(base_graph, base_model, base_parallel, base_training,
                                    target_model, perf_model)
        predicted = simulate_graph(graph).iteration_time_us
        actual = _measured_time(target_model, base_parallel, base_training)
        assert absolute_relative_error_percent(predicted, actual) < _PREDICTION_TOLERANCE_PERCENT

    def test_hidden_size_change_tracks_target(self, base_graph, base_model, base_parallel,
                                              base_training, perf_model):
        target_model = tiny_model(n_layers=8, d_model=2048, name="tiny-wide")
        graph = change_architecture(base_graph, base_model, base_parallel, base_training,
                                    target_model, perf_model)
        predicted = simulate_graph(graph).iteration_time_us
        actual = _measured_time(target_model, base_parallel, base_training)
        assert absolute_relative_error_percent(predicted, actual) < _PREDICTION_TOLERANCE_PERCENT

    def test_more_layers_predicted_slower(self, base_graph, base_model, base_parallel,
                                          base_training, perf_model):
        deeper = base_model.with_changes(name="deeper", n_layers=16)
        graph = change_architecture(base_graph, base_model, base_parallel, base_training,
                                    deeper, perf_model)
        base_time = simulate_graph(base_graph).iteration_time_us
        assert simulate_graph(graph).iteration_time_us > 1.5 * base_time

    def test_wider_model_predicted_slower(self, base_graph, base_model, base_parallel,
                                          base_training, perf_model):
        wider = tiny_model(n_layers=8, d_model=2048, name="wider")
        graph = change_architecture(base_graph, base_model, base_parallel, base_training,
                                    wider, perf_model)
        base_time = simulate_graph(base_graph).iteration_time_us
        assert simulate_graph(graph).iteration_time_us > 1.5 * base_time
