"""Tests for the pipeline span API, metrics registry and run reports.

Two contracts matter most:

* **enabled** — spans nest correctly, stages aggregate per name, the
  metrics registry snapshots into the structured report, and a profiled
  ``Study`` pipeline records the stage names the docs promise;
* **disabled** — instrumentation is an exact no-op: ``trace_span``
  returns one shared singleton, nothing is retained (gc object count is
  stable across instrumented loops), and study outputs are identical
  with tracing on and off (the golden snapshots of ``test_goldens.py``
  run with tracing off and lock the bytes).
"""

from __future__ import annotations

import gc
import json
import threading
import time

import pytest

from repro.api import Study
from repro.observability import (
    NOOP_SPAN,
    HistogramSummary,
    MetricsRegistry,
    empty_report,
    profile,
    start_profiling,
    stop_profiling,
    trace_span,
    tracing_enabled,
)
from repro.observability import tracing
from repro.workload.inference import InferenceConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model


@pytest.fixture(autouse=True)
def no_leaked_profile():
    """Tests must never leak an active profile into the rest of the suite."""
    assert not tracing_enabled()
    yield
    if tracing_enabled():
        stop_profiling()
        pytest.fail("test leaked an active pipeline profile")


def _tiny_study(**kwargs) -> Study:
    return Study.from_emulation(
        tiny_model(n_layers=2, d_model=256),
        "2x1x1",
        TrainingConfig(micro_batch_size=1, num_microbatches=2,
                       sequence_length=128, gradient_bucket_layers=1),
        iterations=1, seed=5, **kwargs)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.count("a", 4)
        registry.count("b", 0.5)
        assert registry.counters == {"a": 5.0, "b": 0.5}

    def test_gauges_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("x", 1)
        registry.gauge("x", 7.5)
        assert registry.gauges == {"x": 7.5}

    def test_histogram_summary(self):
        summary = HistogramSummary()
        for value in (2.0, -1.0, 5.0):
            summary.observe(value)
        assert summary.count == 3
        assert summary.minimum == -1.0
        assert summary.maximum == 5.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_histogram_serialises_to_zeros(self):
        payload = HistogramSummary().to_json()
        assert payload == {"count": 0, "total": 0.0, "min": 0.0,
                           "max": 0.0, "mean": 0.0}

    def test_snapshot_is_sorted_and_json_able(self):
        registry = MetricsRegistry()
        registry.count("z")
        registry.count("a")
        registry.observe("h", 3.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "z"]
        assert snapshot["histograms"]["h"]["count"] == 1
        json.dumps(snapshot)  # must be serialisable as-is


class TestSpanRecording:
    def test_nested_spans_record_parent_and_depth(self):
        with profile() as prof:
            with trace_span("outer"):
                with trace_span("inner", step=3):
                    pass
        spans = {span.name: span for span in prof.spans}
        assert spans["inner"].depth == 1
        assert spans["inner"].parent == spans["outer"].span_id
        assert spans["outer"].depth == 0
        assert spans["outer"].parent == -1
        assert spans["inner"].attrs == {"step": 3}
        # Children complete first; intervals nest.
        assert spans["outer"].start_us <= spans["inner"].start_us
        assert spans["inner"].duration_us <= spans["outer"].duration_us

    def test_span_set_attaches_attributes(self):
        with profile() as prof:
            with trace_span("work") as span:
                span.set(rows=7, path="fast")
        assert prof.spans[0].attrs == {"rows": 7, "path": "fast"}

    def test_exception_marks_the_span_and_propagates(self):
        with pytest.raises(ValueError):
            with profile() as prof:
                with trace_span("broken"):
                    raise ValueError("boom")
        assert prof.spans[0].attrs["error"] == "ValueError"

    def test_threads_have_independent_span_stacks(self):
        with profile() as prof:
            def work():
                with trace_span("thread-span"):
                    pass
            threads = [threading.Thread(target=work) for _ in range(3)]
            with trace_span("main-span"):
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        by_name = [span for span in prof.spans if span.name == "thread-span"]
        assert len(by_name) == 3
        # The main-thread span is not their parent: stacks are per-thread.
        assert all(span.depth == 0 and span.parent == -1 for span in by_name)

    def test_stages_aggregate_by_name(self):
        with profile() as prof:
            for _ in range(3):
                with trace_span("stage.a"):
                    pass
            with trace_span("stage.b"):
                pass
        stages = prof.stages()
        assert stages["stage.a"]["count"] == 3
        assert stages["stage.b"]["count"] == 1
        assert stages["stage.a"]["total_us"] >= stages["stage.a"]["max_us"]
        assert stages["stage.a"]["mean_us"] == pytest.approx(
            stages["stage.a"]["total_us"] / 3)


class TestRecordSpan:
    def test_wall_clock_interval_maps_onto_the_profile(self):
        with profile() as prof:
            start = time.time()
            time.sleep(0.02)
            tracing.record_span("service.queue_wait", start_unix=start,
                                end_unix=time.time(), stage="queue_wait",
                                job="j1")
        span = prof.spans[0]
        assert span.name == "service.queue_wait"
        assert span.attrs == {"stage": "queue_wait", "job": "j1"}
        assert span.start_us >= 0.0
        assert span.duration_us >= 15_000
        assert span.depth == 0
        assert span.parent == -1

    def test_intervals_clamp_to_the_profile_start(self):
        # A wait that began before profiling did still renders, clamped.
        with profile() as prof:
            tracing.record_span("early", start_unix=1.0, end_unix=0.5)
        span = prof.spans[0]
        assert span.start_us == 0.0
        assert span.duration_us == 0.0

    def test_noop_without_an_active_profile(self):
        tracing.record_span("ignored", start_unix=0.0, end_unix=1.0)
        assert not tracing_enabled()


class TestProfileLifecycle:
    def test_nested_profiles_are_rejected(self):
        with profile():
            with pytest.raises(RuntimeError, match="already active"):
                start_profiling()

    def test_stop_without_active_profile_raises(self):
        with pytest.raises(RuntimeError, match="no pipeline profile"):
            stop_profiling()

    def test_report_shape(self):
        with profile(label="unit") as prof:
            with trace_span("stage.a"):
                pass
            tracing.count("things", 2)
            tracing.gauge("level", 0.5)
            tracing.observe("sizes", 10.0)
        report = prof.report()
        assert report["schema"] == 1
        assert report["enabled"] is True
        assert report["label"] == "unit"
        assert report["wall_time_us"] > 0
        assert report["stages"]["stage.a"]["count"] == 1
        assert report["metrics"]["counters"] == {"things": 2.0}
        assert report["metrics"]["gauges"] == {"level": 0.5}
        assert report["metrics"]["histograms"]["sizes"]["count"] == 1
        assert [span["name"] for span in report["spans"]] == ["stage.a"]
        json.dumps(report)

    def test_module_report_serves_the_last_profile(self, monkeypatch):
        monkeypatch.setattr(tracing, "_ACTIVE", None)
        monkeypatch.setattr(tracing, "_LAST", None)
        assert tracing.report() == empty_report()
        assert tracing.report()["enabled"] is False
        with profile(label="latest"):
            with trace_span("only"):
                pass
        report = tracing.report()
        assert report["enabled"] is True
        assert report["label"] == "latest"


class TestDisabledPathIsNoOp:
    def test_disabled_trace_span_returns_the_shared_singleton(self):
        span = trace_span("anything", key="value")
        assert span is NOOP_SPAN
        assert span.set(more=1) is NOOP_SPAN
        with span as inner:
            assert inner is NOOP_SPAN

    def test_disabled_metrics_are_no_ops(self, monkeypatch):
        monkeypatch.setattr(tracing, "_LAST", None)
        tracing.count("never", 5)
        tracing.gauge("never", 1.0)
        tracing.observe("never", 1.0)
        assert tracing.report() == empty_report()

    def test_disabled_instrumentation_retains_nothing(self):
        def instrumented_loop():
            for index in range(200):
                with trace_span("loop", index=index) as span:
                    span.set(extra=index)
                tracing.count("loop.iterations")
                tracing.observe("loop.sizes", float(index))

        instrumented_loop()  # warm caches (bytecode, small ints)
        gc.collect()
        before = len(gc.get_objects())
        instrumented_loop()
        gc.collect()
        assert len(gc.get_objects()) == before

    def test_study_outputs_identical_with_tracing_on_and_off(self):
        def snapshot() -> dict:
            study = _tiny_study()
            prediction = study.predict("2x2x1")
            return {
                "replay_us": study.base_time_us,
                "predicted_us": prediction.iteration_time_us,
                "breakdown": study.breakdown().as_dict(),
            }

        plain = snapshot()
        with profile():
            traced = snapshot()
        assert json.dumps(plain, sort_keys=True) == json.dumps(traced, sort_keys=True)


class TestStudyPipelineInstrumentation:
    def test_profiled_study_records_the_pipeline_stages(self):
        with profile() as prof:
            study = _tiny_study()
            study.replay()
            study.predict("2x2x1")
        stages = prof.stages()
        for name in ("emulate.build_programs", "emulate.iteration",
                     "study.replay", "study.calibrate", "study.derive_graph",
                     "study.compile", "study.predict", "engine.compile_graph"):
            assert name in stages, name
        counters = prof.metrics.snapshot()["counters"]
        assert counters["study.predictions"] == 1.0
        assert counters["study.calibrations"] == 1.0

    def test_calibration_residuals_recorded_only_when_enabled(self):
        with profile() as prof:
            _tiny_study().prepare()
        histograms = prof.metrics.snapshot()["histograms"]
        residuals = [name for name in histograms
                     if name.startswith("calibration.residual.")]
        assert residuals, histograms
        for name in residuals:
            assert histograms[name]["count"] >= 1
        gauges = prof.metrics.snapshot()["gauges"]
        assert any(name.startswith("calibration.factor.") for name in gauges)

    def test_sweep_run_report_has_cache_and_batch_metrics(self, tmp_path):
        # The sweep spec resolves its base model through the GPT-3
        # registry, so this one uses a registry model at tiny parallelism.
        study = Study.from_emulation(
            "gpt3-15b", "2x1x1",
            TrainingConfig(micro_batch_size=1, num_microbatches=2),
            iterations=1, seed=5)
        with profile(label="sweep") as prof:
            result = study.sweep(whatif=("gemm:2", "comm:2"),
                                 cache_dir=tmp_path / "cache")
        report = study.report()
        assert report is prof.report() or report == prof.report()
        # Per-stage wall times for the sweep pipeline.
        for name in ("study.sweep", "sweep.hash", "sweep.cache.lookup",
                     "sweep.prepare", "sweep.group"):
            assert name in report["stages"], name
        counters = report["metrics"]["counters"]
        gauges = report["metrics"]["gauges"]
        assert counters["sweep.scenarios.total"] == len(result)
        assert counters["sweep.scenarios.evaluated"] == len(result)
        # The two what-if scenarios ride the batched fast path together.
        assert counters["batch.runs.fast_path"] >= 1.0
        assert counters["batch.scenarios.fast_path"] >= 2.0
        assert "batch.runs.fallback" not in counters
        assert gauges["sweep.cache.hits"] == 0.0
        assert gauges["sweep.cache.hit_rate"] == 0.0
        assert gauges["sweep.scenarios_per_sec"] > 0
        # A second, fully cached sweep flips the hit-rate to 1.
        with profile(label="cached"):
            study.sweep(whatif=("gemm:2", "comm:2"), cache_dir=tmp_path / "cache")
        cached = study.report()
        assert cached["metrics"]["gauges"]["sweep.cache.hit_rate"] == 1.0
        assert cached["metrics"]["counters"]["sweep.scenarios.cached"] == len(result)

    def test_serving_study_profiles_too(self):
        with profile() as prof:
            study = Study.from_emulation(
                tiny_model(n_layers=2, d_model=256), "2x1x1",
                inference=InferenceConfig(batch_size=4, prompt_length=128,
                                          decode_length=2),
                iterations=1, seed=6)
            study.predict(serving="batch=8")
        stages = prof.stages()
        assert "study.predict" in stages
        assert "emulate.build_programs" in stages

    def test_study_report_without_any_profile_is_the_disabled_marker(self, monkeypatch):
        monkeypatch.setattr(tracing, "_ACTIVE", None)
        monkeypatch.setattr(tracing, "_LAST", None)
        report = _tiny_study().report()
        assert report["enabled"] is False
        assert report["stages"] == {}
        assert report["spans"] == []
