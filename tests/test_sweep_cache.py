"""Tests for the content-addressed sweep result cache and hashing."""

from repro.sweep.cache import CacheStats, SweepCache
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.trace.events import TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle

BUNDLE_HASH = "b" * 64
SCENARIO_HASH = "s" * 64


def _result_payload(time_us: float = 1234.5) -> dict:
    return {"label": "2x2x8", "kind": "parallelism", "target": "2x2x8",
            "whatif": None, "world_size": 32, "iteration_time_us": time_us,
            "base_time_us": 2000.0, "affected_tasks": 0}


class TestSweepCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_store_then_lookup(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) == _result_payload()
        assert cache.stats.hits == 1

    def test_different_scenario_hash_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup(BUNDLE_HASH, "t" * 64) is None

    def test_different_bundle_hash_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup("c" * 64, SCENARIO_HASH) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        entry = next((tmp_path / "cache").glob("*/*.json"))
        entry.write_text("{truncated", encoding="utf-8")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        entry = next((tmp_path / "cache").glob("*/*.json"))
        entry.write_text('{"schema": 999, "result": {}}', encoding="utf-8")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None

    def test_entries_and_clear(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        cache.store(BUNDLE_HASH, "t" * 64, _result_payload(999.0))
        assert cache.entries() == 2
        assert cache.clear() == 2
        assert cache.entries() == 0

    def test_stats_properties(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0


class TestHashing:
    def test_hash_json_is_order_insensitive(self):
        assert hash_json({"a": 1, "b": 2}) == hash_json({"b": 2, "a": 1})

    def test_hash_json_differs_on_content(self):
        assert hash_json({"a": 1}) != hash_json({"a": 2})

    def _bundle(self, duration: float = 5.0) -> TraceBundle:
        event = TraceEvent(name="kernel", cat="kernel", ts=0.0,
                           dur=duration, pid=0, tid=0)
        bundle = TraceBundle()
        bundle.add(KinetoTrace(rank=0, events=[event]))
        return bundle

    def test_bundle_hash_is_deterministic(self):
        assert hash_trace_bundle(self._bundle()) == hash_trace_bundle(self._bundle())

    def test_bundle_hash_sees_event_changes(self):
        assert hash_trace_bundle(self._bundle(5.0)) != hash_trace_bundle(self._bundle(6.0))

    def test_bundle_hash_survives_disk_roundtrip(self, tmp_path):
        bundle = self._bundle()
        bundle.save(tmp_path / "bundle")
        reloaded = TraceBundle.load(tmp_path / "bundle")
        assert hash_trace_bundle(reloaded) == hash_trace_bundle(bundle)
