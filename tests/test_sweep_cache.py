"""Tests for the content-addressed sweep result cache and hashing."""

import os
import shutil
import threading

from repro.sweep.cache import CacheStats, SweepCache
from repro.sweep.hashing import hash_json, hash_trace_bundle
from repro.trace.events import TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle

BUNDLE_HASH = "b" * 64
SCENARIO_HASH = "s" * 64


def _result_payload(time_us: float = 1234.5) -> dict:
    return {"label": "2x2x8", "kind": "parallelism", "target": "2x2x8",
            "whatif": None, "world_size": 32, "iteration_time_us": time_us,
            "base_time_us": 2000.0, "affected_tasks": 0}


class TestSweepCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_store_then_lookup(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) == _result_payload()
        assert cache.stats.hits == 1

    def test_different_scenario_hash_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup(BUNDLE_HASH, "t" * 64) is None

    def test_different_bundle_hash_misses(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        assert cache.lookup("c" * 64, SCENARIO_HASH) is None

    def test_corrupted_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        entry = next((tmp_path / "cache").glob("*/*.json"))
        entry.write_text("{truncated", encoding="utf-8")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        entry = next((tmp_path / "cache").glob("*/*.json"))
        entry.write_text('{"schema": 999, "result": {}}', encoding="utf-8")
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None

    def test_entries_and_clear(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        cache.store(BUNDLE_HASH, "t" * 64, _result_payload(999.0))
        assert cache.entries() == 2
        assert cache.clear() == 2
        assert cache.entries() == 0

    def test_stats_properties(self):
        stats = CacheStats(hits=3, misses=1)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        assert CacheStats().hit_rate == 0.0

    def test_partially_deleted_bundle_dir_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        shutil.rmtree(next((tmp_path / "cache").iterdir()))
        assert cache.lookup(BUNDLE_HASH, SCENARIO_HASH) is None
        assert cache.stats.misses == 1

    def test_store_leaves_no_temp_files_behind(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.store(BUNDLE_HASH, SCENARIO_HASH, _result_payload())
        bucket = (tmp_path / "cache") / BUNDLE_HASH[:32]
        assert [p.name for p in bucket.iterdir()] == [f"{SCENARIO_HASH[:32]}.json"]


class TestConcurrentWriters:
    def test_racing_writers_never_produce_a_torn_entry(self, tmp_path):
        """Concurrent store() + lookup() of one entry: hit or miss, never junk.

        Before atomic writes this raced: a reader could observe a
        partially written JSON file.  With tmp-file + ``os.replace``
        every lookup sees either nothing or one complete payload.
        """
        root = tmp_path / "cache"
        payloads = [_result_payload(float(value)) for value in range(8)]
        stop = threading.Event()
        failures: list[str] = []

        def writer(payload: dict) -> None:
            cache = SweepCache(root)
            while not stop.is_set():
                cache.store(BUNDLE_HASH, SCENARIO_HASH, payload)

        def reader() -> None:
            cache = SweepCache(root)
            while not stop.is_set():
                found = cache.lookup(BUNDLE_HASH, SCENARIO_HASH)
                if found is not None and found not in payloads:
                    failures.append(repr(found))

        threads = [threading.Thread(target=writer, args=(payload,))
                   for payload in payloads]
        threads += [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        stop.wait(0.5)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        # The surviving entry is one of the writers' payloads, intact.
        final = SweepCache(root).lookup(BUNDLE_HASH, SCENARIO_HASH)
        assert final in payloads
        # No temp droppings remain visible to entry accounting.
        cache = SweepCache(root)
        assert cache.entries() == 1
        assert cache.disk_stats()["entries"] == 1

    def test_concurrent_writers_to_distinct_entries(self, tmp_path):
        root = tmp_path / "cache"

        def fill(index: int) -> None:
            cache = SweepCache(root)
            for position in range(10):
                scenario = f"{index}{position}".ljust(64, "f")
                cache.store(BUNDLE_HASH, scenario, _result_payload(float(position)))

        threads = [threading.Thread(target=fill, args=(index,))
                   for index in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert SweepCache(root).entries() == 40


class TestDiskStatsAndPrune:
    def _fill(self, root, bundles: int = 2, per_bundle: int = 3) -> SweepCache:
        cache = SweepCache(root)
        for bundle in range(bundles):
            for scenario in range(per_bundle):
                cache.store(str(bundle) * 64, f"{bundle}{scenario}".ljust(64, "a"),
                            _result_payload(float(scenario)))
        return cache

    def test_disk_stats_counts_entries_bundles_and_bytes(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        stats = cache.disk_stats()
        assert stats["entries"] == 6
        assert stats["bundles"] == 2
        assert stats["total_bytes"] > 0
        assert stats["root"] == str(tmp_path / "cache")

    def test_disk_stats_on_missing_root(self, tmp_path):
        stats = SweepCache(tmp_path / "never-created").disk_stats()
        assert stats == {"root": str(tmp_path / "never-created"), "entries": 0,
                         "bundles": 0, "total_bytes": 0}

    def test_prune_to_zero_removes_everything(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        summary = cache.prune(0)
        assert summary["removed"] == 6
        assert summary["remaining_entries"] == 0
        assert summary["remaining_bytes"] == 0
        assert cache.entries() == 0
        # Empty bucket directories are removed along with their entries.
        assert list((tmp_path / "cache").iterdir()) == []

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        for index, age in enumerate((100, 50, 10)):  # older = smaller mtime
            cache.store(BUNDLE_HASH, str(index) * 64, _result_payload(float(index)))
            path = cache._entry_path(BUNDLE_HASH, str(index) * 64)
            os.utime(path, (1_000_000 - age, 1_000_000 - age))
        entry_size = cache._entry_path(BUNDLE_HASH, "0" * 64).stat().st_size
        summary = cache.prune(2 * entry_size)
        assert summary["removed"] == 1
        # The oldest entry (stored first, mtime farthest back) is gone;
        # the two younger survive.
        assert cache.lookup(BUNDLE_HASH, "0" * 64) is None
        assert cache.lookup(BUNDLE_HASH, "1" * 64) is not None
        assert cache.lookup(BUNDLE_HASH, "2" * 64) is not None

    def test_prune_within_budget_is_a_noop(self, tmp_path):
        cache = self._fill(tmp_path / "cache")
        before = cache.disk_stats()
        summary = cache.prune(before["total_bytes"] + 1)
        assert summary["removed"] == 0
        assert summary["remaining_entries"] == before["entries"]
        assert cache.disk_stats() == before


class TestHashing:
    def test_hash_json_is_order_insensitive(self):
        assert hash_json({"a": 1, "b": 2}) == hash_json({"b": 2, "a": 1})

    def test_hash_json_differs_on_content(self):
        assert hash_json({"a": 1}) != hash_json({"a": 2})

    def _bundle(self, duration: float = 5.0) -> TraceBundle:
        event = TraceEvent(name="kernel", cat="kernel", ts=0.0,
                           dur=duration, pid=0, tid=0)
        bundle = TraceBundle()
        bundle.add(KinetoTrace(rank=0, events=[event]))
        return bundle

    def test_bundle_hash_is_deterministic(self):
        assert hash_trace_bundle(self._bundle()) == hash_trace_bundle(self._bundle())

    def test_bundle_hash_sees_event_changes(self):
        assert hash_trace_bundle(self._bundle(5.0)) != hash_trace_bundle(self._bundle(6.0))

    def test_bundle_hash_survives_disk_roundtrip(self, tmp_path):
        bundle = self._bundle()
        bundle.save(tmp_path / "bundle")
        reloaded = TraceBundle.load(tmp_path / "bundle")
        assert hash_trace_bundle(reloaded) == hash_trace_bundle(bundle)
