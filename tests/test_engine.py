"""Engine/legacy equivalence: the array-backed session must reproduce the
seed scheduler's exact start times.

``tests/reference_simulator.py`` preserves the seed dict/heap algorithm
verbatim; every test here asserts bit-identical schedules (``==`` on
floats, no tolerance) between it and :class:`repro.core.engine.
SimulationSession`, across hand-built edge cases, property-style random
graphs and the existing fixture bundles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import SimulationSession, compile_graph
from repro.core.graph import ExecutionGraph
from repro.core.replay import simulate_graph
from repro.core.simulator import Simulator
from repro.core.tasks import DependencyType, Task, TaskKind
from repro.core.whatif import evaluate_scenario
from tests.conftest import hyp_max_examples
from tests.reference_simulator import reference_run


def cpu(graph, rank=0, thread=1, duration=10.0, ts=0.0, name="op", sync_streams=()):
    return graph.add_task(Task(task_id=-1, rank=rank, kind=TaskKind.CPU, name=name,
                               duration=duration, trace_ts=ts, thread=thread,
                               sync_streams=sync_streams))


def gpu(graph, rank=0, stream=7, duration=10.0, ts=0.0, name="kernel", group=None):
    return graph.add_task(Task(task_id=-1, rank=rank, kind=TaskKind.GPU, name=name,
                               duration=duration, trace_ts=ts, stream=stream,
                               collective_group=group))


def assert_bit_identical(graph: ExecutionGraph, start_time: float = 0.0) -> None:
    """Engine session, compatibility wrapper and seed oracle must agree exactly."""
    expected = reference_run(graph, start_time=start_time)
    compiled = compile_graph(graph)
    run = SimulationSession(compiled).run(start_time=start_time)
    assert {compiled.tasks[i].task_id for i in run.finalize_order.tolist()} == set(expected)
    for task_id, (start, duration) in expected.items():
        index = compiled.index_of[task_id]
        assert run.starts[index] == start
        assert run.durations[index] == duration
    # Finalize order (which the wrapper exposes as dict insertion order)
    # must match the seed's scheduling order too.
    engine_order = [compiled.tasks[i].task_id for i in run.finalize_order.tolist()]
    assert engine_order == list(expected)
    wrapped = Simulator(graph).run(start_time=start_time)
    assert {tid: (t.start, t.duration) for tid, t in wrapped.tasks.items()} == expected
    assert list(wrapped.tasks) == list(expected)


class TestEdgeCases:
    def test_empty_graph(self):
        graph = ExecutionGraph()
        assert_bit_identical(graph)
        run = SimulationSession(compile_graph(graph)).run()
        assert run.iteration_time_us == 0.0
        assert run.total_time() == 0.0

    def test_single_task(self):
        graph = ExecutionGraph()
        cpu(graph, duration=3.5)
        assert_bit_identical(graph)

    def test_zero_duration_chain(self):
        graph = ExecutionGraph()
        previous = None
        for index in range(6):
            task = cpu(graph, duration=0.0, ts=float(index))
            if previous is not None:
                graph.add_dependency(previous.task_id, task.task_id,
                                     DependencyType.CPU_INTRA_THREAD)
            previous = task
        assert_bit_identical(graph)

    def test_zero_duration_ties_on_shared_processor(self):
        # Many tasks ready at t=0 on one stream: scheduling order is decided
        # purely by the heap tie-break, which must match the seed exactly.
        graph = ExecutionGraph()
        for _ in range(8):
            gpu(graph, duration=0.0)
        for _ in range(4):
            gpu(graph, duration=1.0)
        assert_bit_identical(graph)

    def test_start_time_offset(self):
        graph = ExecutionGraph()
        a = cpu(graph, duration=5.0)
        b = gpu(graph, duration=7.0)
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_TO_GPU)
        assert_bit_identical(graph, start_time=1234.5)

    def test_cycle_raises_like_seed(self):
        graph = ExecutionGraph()
        a, b = cpu(graph), cpu(graph, ts=1.0)
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_INTRA_THREAD)
        graph.add_dependency(b.task_id, a.task_id, DependencyType.CPU_INTRA_THREAD)
        with pytest.raises(RuntimeError):
            reference_run(graph)
        with pytest.raises(RuntimeError):
            Simulator(graph).run()


class TestSyncHeavyGraphs:
    def build(self) -> ExecutionGraph:
        """Two ranks, three streams each, per-stream syncs then a device sync."""
        graph = ExecutionGraph()
        for rank in (0, 1):
            launcher = cpu(graph, rank=rank, duration=1.0)
            previous_launch = launcher
            for wave in range(3):
                for stream in (7, 20, 24):
                    launch = cpu(graph, rank=rank, duration=0.5,
                                 ts=float(wave) + stream / 100.0,
                                 name="cudaLaunchKernel")
                    graph.add_dependency(previous_launch.task_id, launch.task_id,
                                         DependencyType.CPU_INTRA_THREAD)
                    kernel = gpu(graph, rank=rank, stream=stream,
                                 duration=10.0 * (wave + 1) + stream,
                                 ts=float(wave))
                    graph.add_dependency(launch.task_id, kernel.task_id,
                                         DependencyType.CPU_TO_GPU)
                    previous_launch = launch
            # Every kernel is enqueued before the first sync, so each sync
            # really drains its stream(s) rather than deadlocking.
            waiter = previous_launch
            for stream in (7, 20):
                sync = cpu(graph, rank=rank, duration=2.0, ts=10.0 + stream,
                           name="cudaStreamSynchronize", sync_streams=(stream,))
                graph.add_dependency(waiter.task_id, sync.task_id,
                                     DependencyType.CPU_INTRA_THREAD)
                waiter = sync
            device_sync = cpu(graph, rank=rank, duration=1.0, ts=50.0,
                              name="cudaDeviceSynchronize", sync_streams=(7, 20, 24))
            graph.add_dependency(waiter.task_id, device_sync.task_id,
                                 DependencyType.CPU_INTRA_THREAD)
        return graph

    def test_sync_heavy_graph_matches_seed(self):
        assert_bit_identical(self.build())

    def test_sync_on_absent_stream(self):
        graph = ExecutionGraph()
        cpu(graph, duration=2.0, name="cudaStreamSynchronize", sync_streams=(99,))
        gpu(graph, duration=5.0)
        assert_bit_identical(graph)

    def test_collective_groups_align(self):
        graph = ExecutionGraph()
        slow = gpu(graph, rank=0, stream=7, duration=300.0)
        send = gpu(graph, rank=0, stream=28, duration=20.0, ts=1.0, group="pair-0")
        graph.add_dependency(slow.task_id, send.task_id, DependencyType.GPU_INTER_STREAM)
        recv = gpu(graph, rank=1, stream=30, duration=20.0, ts=1.0, group="pair-0")
        follow = gpu(graph, rank=1, stream=30, duration=5.0, ts=2.0, group="pair-1")
        graph.add_dependency(recv.task_id, follow.task_id, DependencyType.GPU_INTRA_STREAM)
        solo = gpu(graph, rank=0, stream=28, duration=5.0, ts=3.0, group="pair-1")
        graph.add_dependency(send.task_id, solo.task_id, DependencyType.GPU_INTRA_STREAM)
        assert_bit_identical(graph)


# -- property-style random graphs ---------------------------------------------

_DURATIONS = st.sampled_from([0.0, 0.5, 1.0, 3.25, 10.0, 100.0])


@st.composite
def random_graphs(draw):
    """Small random DAGs mixing CPU/GPU tasks, syncs and collective groups."""
    n = draw(st.integers(min_value=1, max_value=18))
    graph = ExecutionGraph()
    tasks = []
    for index in range(n):
        rank = draw(st.integers(min_value=0, max_value=1))
        duration = draw(_DURATIONS)
        ts = float(draw(st.integers(min_value=0, max_value=5)))
        if draw(st.booleans()):
            stream = draw(st.sampled_from([7, 20]))
            group = draw(st.sampled_from([None, None, "g0", "g1"]))
            task = gpu(graph, rank=rank, stream=stream, duration=duration,
                       ts=ts, group=group)
        else:
            sync = draw(st.sampled_from([(), (), (7,), (7, 20)]))
            task = cpu(graph, rank=rank, thread=draw(st.sampled_from([1, 2])),
                       duration=duration, ts=ts, sync_streams=sync)
        tasks.append(task)
    # Forward-only edges keep the fixed dependencies acyclic.
    for dst_index in range(1, n):
        for src_index in draw(st.lists(st.integers(0, dst_index - 1),
                                       max_size=2, unique=True)):
            graph.add_dependency(tasks[src_index].task_id, tasks[dst_index].task_id,
                                 DependencyType.CPU_INTRA_THREAD)
    return graph


class TestPropertyEquivalence:
    @settings(max_examples=hyp_max_examples(200), deadline=None)
    @given(random_graphs())
    def test_random_graphs_match_seed(self, graph):
        # Random sync/group placement can make a schedule unsatisfiable
        # (e.g. a kernel behind its own stream's sync): the engine must
        # then fail exactly where the seed failed.
        try:
            expected = reference_run(graph)
        except RuntimeError:
            with pytest.raises(RuntimeError):
                SimulationSession(compile_graph(graph)).run()
            return
        compiled = compile_graph(graph)
        run = SimulationSession(compiled).run()
        for task_id, (start, duration) in expected.items():
            index = compiled.index_of[task_id]
            assert run.starts[index] == start
            assert run.durations[index] == duration

    @settings(max_examples=hyp_max_examples(50), deadline=None)
    @given(random_graphs(), st.floats(min_value=0.0, max_value=1e6,
                                      allow_nan=False, allow_infinity=False))
    def test_random_graphs_match_seed_with_offset(self, graph, start_time):
        try:
            expected = reference_run(graph, start_time=start_time)
        except RuntimeError:
            return
        compiled = compile_graph(graph)
        run = SimulationSession(compiled).run(start_time=start_time)
        for task_id, (start, _) in expected.items():
            assert run.starts[compiled.index_of[task_id]] == start


class TestFixtureBundles:
    def test_fixture_graph_matches_seed(self, small_graph):
        assert_bit_identical(small_graph)

    def test_fixture_subgraphs_match_seed(self, small_graph):
        for rank in small_graph.ranks()[:2]:
            assert_bit_identical(small_graph.subgraph_for_ranks([rank]))

    def test_iteration_time_matches_trace_bundle(self, small_graph):
        run = SimulationSession(compile_graph(small_graph)).run()
        assert run.iteration_time_us == simulate_graph(small_graph).iteration_time_us


class TestSessionReuse:
    def test_repeated_runs_are_identical(self, small_graph):
        session = SimulationSession(compile_graph(small_graph))
        first = session.run()
        second = session.run()
        assert np.array_equal(first.starts, second.starts)
        assert np.array_equal(first.finalize_order, second.finalize_order)

    def test_duration_swap_then_base_run_is_clean(self, small_graph):
        session = SimulationSession(compile_graph(small_graph))
        base = session.run()
        halved = session.run(durations=session.compiled.durations * 0.5)
        assert halved.iteration_time_us < base.iteration_time_us
        again = session.run()
        assert np.array_equal(base.starts, again.starts)

    def test_scaled_durations_match_seed_clone_path(self, small_graph):
        # The seed what-if path cloned the graph, rescaled matching tasks
        # and re-simulated; the session path must land on the same times.
        from repro.core.whatif import _clone_graph

        def predicate(task):
            return task.kind == TaskKind.GPU and task.op_class == "gemm"

        clone = _clone_graph(small_graph)
        affected_clone = 0
        for task in clone.tasks.values():
            if predicate(task):
                task.duration = task.duration / 2.0
                affected_clone += 1
        seed_time = simulate_graph(clone).iteration_time_us

        session = SimulationSession(compile_graph(small_graph))
        durations, affected = session.compiled.scaled_durations(predicate, 2.0)
        assert affected == affected_clone
        assert session.run(durations=durations).iteration_time_us == seed_time

        result = evaluate_scenario(small_graph, "gemm x2", predicate, 2.0)
        assert result.scenario_time_us == seed_time
        assert result.affected_tasks == affected_clone

    def test_duration_vector_shape_is_checked(self, small_graph):
        session = SimulationSession(compile_graph(small_graph))
        with pytest.raises(ValueError):
            session.run(durations=np.zeros(3))


class TestCompiledGraph:
    def test_topological_order_is_complete_and_valid(self, small_graph):
        compiled = compile_graph(small_graph)
        order = compiled.topological.tolist()
        assert sorted(order) == list(range(len(compiled)))
        position = {index: rank for rank, index in enumerate(order)}
        for dependency in small_graph.dependencies:
            assert (position[compiled.index_of[dependency.src]]
                    < position[compiled.index_of[dependency.dst]])

    def test_stream_totals_cover_gpu_tasks(self, small_graph):
        compiled = compile_graph(small_graph)
        assert int(compiled.stream_total.sum()) == len(small_graph.gpu_tasks())

    def test_mask_counts_match_predicate(self, small_graph):
        compiled = compile_graph(small_graph)
        mask = compiled.mask(lambda task: task.kind == TaskKind.GPU)
        assert int(mask.sum()) == len(small_graph.gpu_tasks())
