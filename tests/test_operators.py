"""Unit tests for the transformer operator decomposition."""

import pytest

from repro.workload.model_config import gpt3_model
from repro.workload.operators import (
    CollectiveKind,
    CollectiveSpec,
    OpClass,
    OpSpec,
    dp_gradient_buckets,
    embedding_backward_ops,
    embedding_forward_ops,
    head_backward_ops,
    head_forward_ops,
    layer_backward_ops,
    layer_forward_ops,
    optimizer_ops,
    pp_activation_bytes,
)
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model


@pytest.fixture(scope="module")
def model():
    return gpt3_model("gpt3-15b")


@pytest.fixture(scope="module")
def parallel():
    return ParallelismConfig(2, 2, 4)


@pytest.fixture(scope="module")
def training():
    return TrainingConfig(micro_batch_size=2, num_microbatches=4)


class TestLayerOps:
    def test_forward_contains_two_tp_allreduces(self, model, parallel, training):
        ops = layer_forward_ops(model, parallel, training)
        comms = [op for op in ops if op.is_communication]
        assert len(comms) == 2
        assert all(op.collective.group == "tp" for op in comms)

    def test_backward_contains_two_tp_allreduces(self, model, parallel, training):
        comms = [op for op in layer_backward_ops(model, parallel, training)
                 if op.is_communication]
        assert len(comms) == 2

    def test_no_tp_comm_when_tp_is_one(self, model, training):
        ops = layer_forward_ops(model, ParallelismConfig(1, 2, 4), training)
        assert not any(op.is_communication for op in ops)

    def test_forward_gemm_flops_scale_inversely_with_tp(self, model, training):
        def gemm_flops(tp):
            ops = layer_forward_ops(model, ParallelismConfig(tp, 2, 4), training)
            return sum(op.flops for op in ops if op.op_class == OpClass.GEMM)
        assert gemm_flops(1) == pytest.approx(2 * gemm_flops(2), rel=1e-6)

    def test_backward_has_more_gemm_flops_than_forward(self, model, parallel, training):
        forward = sum(op.flops for op in layer_forward_ops(model, parallel, training))
        backward = sum(op.flops for op in layer_backward_ops(model, parallel, training))
        assert backward > forward

    def test_ops_tagged_with_phase(self, model, parallel, training):
        assert all(op.metadata["phase"] == "forward"
                   for op in layer_forward_ops(model, parallel, training))
        assert all(op.metadata["phase"] == "backward"
                   for op in layer_backward_ops(model, parallel, training))

    def test_qkv_gemm_uses_attention_width(self, parallel, training):
        model_44b = gpt3_model("gpt3-44b")  # attention width is half the hidden size
        qkv = next(op for op in layer_forward_ops(model_44b, parallel, training)
                   if op.name == "attn_qkv")
        assert qkv.n == 3 * model_44b.attention_dim // parallel.tp
        assert qkv.k == model_44b.d_model

    def test_flops_grow_with_hidden_size(self, parallel, training):
        small = tiny_model(d_model=1024)
        large = tiny_model(d_model=2048)
        small_flops = sum(op.flops for op in layer_forward_ops(small, parallel, training))
        large_flops = sum(op.flops for op in layer_forward_ops(large, parallel, training))
        assert large_flops > 2 * small_flops


class TestEmbeddingHeadOptimizer:
    def test_embedding_ops_are_memory_bound(self, model, parallel, training):
        for op in embedding_forward_ops(model, parallel, training) + \
                embedding_backward_ops(model, parallel, training):
            assert op.op_class in OpClass.COMPUTE_CLASSES
            assert op.bytes_accessed > 0

    def test_head_contains_vocabulary_gemm(self, model, parallel, training):
        gemms = [op for op in head_forward_ops(model, parallel, training)
                 if op.op_class == OpClass.GEMM]
        assert any(op.n == model.vocab_size // parallel.tp for op in gemms)

    def test_head_backward_has_wgrad_and_dgrad(self, model, parallel, training):
        names = {op.name for op in head_backward_ops(model, parallel, training)}
        assert {"lm_head_dgrad", "lm_head_wgrad"} <= names

    def test_optimizer_bytes_scale_with_layers(self, model, parallel, training):
        few = sum(op.bytes_accessed for op in optimizer_ops(model, parallel, training, 2, False))
        many = sum(op.bytes_accessed for op in optimizer_ops(model, parallel, training, 8, False))
        assert many > 3 * few

    def test_optimizer_embedding_adds_bytes(self, model, parallel, training):
        without = sum(op.bytes_accessed
                      for op in optimizer_ops(model, parallel, training, 4, False))
        with_embedding = sum(op.bytes_accessed
                             for op in optimizer_ops(model, parallel, training, 4, True))
        assert with_embedding > without


class TestBucketsAndActivations:
    def test_buckets_cover_all_layers_once(self, model, parallel, training):
        layers = list(range(24))
        buckets = dp_gradient_buckets(model, parallel, training, layers, include_embedding=False)
        covered = [layer for bucket_layers, _ in buckets for layer in bucket_layers]
        assert sorted(covered) == layers

    def test_buckets_in_backward_completion_order(self, model, parallel, training):
        buckets = dp_gradient_buckets(model, parallel, training, range(8), include_embedding=False)
        first_bucket = buckets[0][0]
        assert max(first_bucket) == 7  # deepest layers reduce first

    def test_embedding_bucket_appended(self, model, parallel, training):
        buckets = dp_gradient_buckets(model, parallel, training, range(4), include_embedding=True)
        assert buckets[-1][0] == []
        assert buckets[-1][1] > 0

    def test_bucket_bytes_match_layer_parameters(self, model, parallel, training):
        buckets = dp_gradient_buckets(model, parallel, training, range(4), include_embedding=False)
        expected = model.layer_parameters / parallel.tp * training.dtype_bytes * 4
        assert sum(size for _, size in buckets) == pytest.approx(expected)

    def test_pp_activation_bytes(self, model, training):
        expected = training.micro_batch_size * training.sequence_length * model.d_model * 2
        assert pp_activation_bytes(model, training) == expected


class TestSpecValidation:
    def test_collective_spec_rejects_bad_group(self):
        with pytest.raises(ValueError):
            CollectiveSpec(kind=CollectiveKind.ALL_REDUCE, size_bytes=1.0, group="cp")

    def test_collective_spec_rejects_negative_size(self):
        with pytest.raises(ValueError):
            CollectiveSpec(kind=CollectiveKind.ALL_REDUCE, size_bytes=-1.0, group="tp")

    def test_opspec_scaled_returns_copy(self):
        op = OpSpec(name="x", op_class=OpClass.ELEMENTWISE, bytes_accessed=10.0)
        clone = op.scaled(bytes_accessed=20.0)
        assert clone.bytes_accessed == 20.0 and op.bytes_accessed == 10.0
