"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_directory(tmp_path_factory):
    directory = tmp_path_factory.mktemp("traces") / "bundle"
    exit_code = main([
        "emulate", "--model", "gpt3-15b", "--parallelism", "2x2x2",
        "--micro-batch-size", "1", "--num-microbatches", "2",
        "--iterations", "1", "--output", str(directory),
    ])
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_emulate_defaults(self):
        args = build_parser().parse_args(["emulate", "--output", "/tmp/x"])
        assert args.model == "gpt3-15b"
        assert args.parallelism == "2x2x4"


class TestCommands:
    def test_emulate_writes_bundle(self, trace_directory):
        assert (trace_directory / "manifest.json").exists()

    def test_replay_command(self, trace_directory, capsys):
        assert main(["replay", "--trace", str(trace_directory)]) == 0
        output = capsys.readouterr().out
        assert "replayed iteration time" in output
        assert "exposed_comm_ms" in output

    def test_replay_with_dpro_baseline(self, trace_directory, capsys):
        assert main(["replay", "--trace", str(trace_directory), "--baseline", "dpro"]) == 0
        assert "replayed iteration time" in capsys.readouterr().out

    def test_breakdown_command(self, trace_directory, capsys):
        assert main(["breakdown", "--trace", str(trace_directory)]) == 0
        assert "iteration time" in capsys.readouterr().out

    def test_predict_parallelism(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1", "--num-microbatches", "2",
            "--target-parallelism", "2x2x8",
        ])
        assert code == 0
        assert "predicted 2x2x8" in capsys.readouterr().out

    def test_predict_architecture(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1", "--num-microbatches", "2",
            "--target-model", "gpt3-v1",
        ])
        assert code == 0
        assert "gpt3-v1" in capsys.readouterr().out

    def test_predict_without_target_errors(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2",
        ])
        assert code == 2
