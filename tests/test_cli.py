"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.observability import validate_chrome_trace


@pytest.fixture(scope="module")
def trace_directory(tmp_path_factory):
    directory = tmp_path_factory.mktemp("traces") / "bundle"
    exit_code = main([
        "emulate", "--model", "gpt3-15b", "--parallelism", "2x2x2",
        "--micro-batch-size", "1", "--num-microbatches", "2",
        "--iterations", "1", "--output", str(directory),
    ])
    assert exit_code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_emulate_defaults(self):
        args = build_parser().parse_args(["emulate", "--output", "/tmp/x"])
        assert args.model == "gpt3-15b"
        assert args.parallelism == "2x2x4"

    def test_version_flag(self, capsys):
        from repro.version import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro-lumos {__version__}" in capsys.readouterr().out


class TestCommands:
    def test_emulate_writes_bundle(self, trace_directory):
        assert (trace_directory / "manifest.json").exists()

    def test_replay_command(self, trace_directory, capsys):
        assert main(["replay", "--trace", str(trace_directory)]) == 0
        output = capsys.readouterr().out
        assert "replayed iteration time" in output
        assert "exposed_comm_ms" in output

    def test_replay_with_dpro_baseline(self, trace_directory, capsys):
        assert main(["replay", "--trace", str(trace_directory), "--baseline", "dpro"]) == 0
        assert "replayed iteration time" in capsys.readouterr().out

    def test_breakdown_command(self, trace_directory, capsys):
        assert main(["breakdown", "--trace", str(trace_directory)]) == 0
        assert "iteration time" in capsys.readouterr().out

    def test_replay_and_breakdown_tolerate_foreign_metadata(self, trace_directory,
                                                            tmp_path, capsys):
        # Trace bundles from other profilers may carry metadata outside
        # the GPT-3 registry; replay-only workflows must still work.
        from repro.trace.kineto import TraceBundle
        bundle = TraceBundle.load(trace_directory)
        bundle.metadata["model"] = "llama-405b"
        bundle.metadata["parallelism"] = "not-a-label"
        foreign = tmp_path / "foreign"
        bundle.save(foreign)
        assert main(["replay", "--trace", str(foreign)]) == 0
        assert main(["breakdown", "--trace", str(foreign)]) == 0
        assert "iteration time" in capsys.readouterr().out

    def test_predict_parallelism(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1", "--num-microbatches", "2",
            "--target-parallelism", "2x2x8",
        ])
        assert code == 0
        assert "predicted 2x2x8" in capsys.readouterr().out

    def test_predict_architecture(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1", "--num-microbatches", "2",
            "--target-model", "gpt3-v1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "gpt3-v1" in output
        # Both the base replay and the predicted target get a breakdown row.
        assert "base replay:" in output
        assert "predicted gpt3-v1:" in output
        assert "exposed_comm_ms" in output

    def test_predict_rejects_unknown_target_model(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target-model", "gpt9",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "unknown model 'gpt9'" in err

    def test_predict_without_target_errors(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2",
        ])
        assert code == 2

    def test_predict_without_target_prints_usage(self, trace_directory, capsys):
        main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2",
        ])
        err = capsys.readouterr().err
        assert ("predict requires a single --target (or exactly one of "
                "--target-parallelism, --target-model or --target-serving)") in err
        assert "usage:" in err

    def test_predict_rejects_tensor_parallelism_change(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target-parallelism", "4x2x2",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "tensor" in err
        assert "4x2x2" in err

    def test_predict_tp_mismatch_is_a_typed_library_error(self, trace_directory):
        # The rule lives in the library, not in CLI string handling: the
        # same target raises PredictError when driven through the API.
        from repro.api import PredictError, Study
        study = Study.from_trace(trace_directory, model="gpt3-15b",
                                 parallelism="2x2x2")
        with pytest.raises(PredictError, match="tensor parallelism"):
            study.predict("4x2x2")

    def test_sweep_with_inline_axes(self, trace_directory, tmp_path, capsys):
        argv = [
            "sweep", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--targets", "2x2x4",
            "--whatif", "gemm:2", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "evaluated 4 scenarios" in output
        assert "pareto frontier" in output
        # A repeated invocation is served entirely from the cache.
        assert main(argv) == 0
        assert "cache hits=4 misses=0 hit-rate=100%" in capsys.readouterr().out

    def test_sweep_with_spec_file(self, trace_directory, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"base": {"model": "gpt3-15b", "parallelism": "2x2x2",'
            ' "micro_batch_size": 1, "num_microbatches": 2},'
            ' "parallelism": ["2x2x4"], "include_baseline": false}',
            encoding="utf-8")
        assert main(["sweep", "--trace", str(trace_directory),
                     "--spec", str(spec), "--top", "1"]) == 0
        output = capsys.readouterr().out
        assert "evaluated 1 scenarios" in output
        assert "2x2x4" in output

    def test_sweep_without_axes_errors(self, trace_directory, capsys):
        assert main(["sweep", "--trace", str(trace_directory)]) == 2
        err = capsys.readouterr().err
        assert ("sweep requires --spec, --target, --targets, "
                "--target-models or --serving") in err
        assert "usage:" in err

    def test_sweep_reports_bad_whatif_cleanly(self, trace_directory, capsys):
        code = main(["sweep", "--trace", str(trace_directory),
                     "--targets", "2x2x4", "--whatif", "gemm"])
        assert code == 2
        assert "error: bad what-if 'gemm'" in capsys.readouterr().err

    def test_sweep_reports_unknown_model_cleanly(self, trace_directory, capsys):
        code = main(["sweep", "--trace", str(trace_directory),
                     "--target-models", "gpt9"])
        assert code == 2
        assert "error: unknown model 'gpt9'" in capsys.readouterr().err

    def test_sweep_reports_bad_spec_file_cleanly(self, trace_directory, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(["sweep", "--trace", str(trace_directory), "--spec", str(bad)])
        assert code == 2
        assert "is not valid JSON" in capsys.readouterr().err

    def test_sweep_reports_missing_trace_cleanly(self, tmp_path, capsys):
        code = main(["sweep", "--trace", str(tmp_path / "nope"), "--targets", "2x2x4"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_sweep_reports_malformed_target_cleanly(self, trace_directory, capsys):
        code = main(["sweep", "--trace", str(trace_directory), "--targets", "2x2"])
        assert code == 2
        assert "TPxPPxDP" in capsys.readouterr().err

    def test_sweep_rejects_tp_change(self, trace_directory, capsys):
        code = main([
            "sweep", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--targets", "4x2x2",
        ])
        assert code == 2
        assert "tensor parallelism" in capsys.readouterr().err


@pytest.fixture(scope="module")
def serving_trace_directory(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serving") / "bundle"
    exit_code = main([
        "emulate", "--workload", "serving", "--model", "gpt3-15b",
        "--parallelism", "2x1x1", "--requests", "2", "--prompt-length", "64",
        "--decode-length", "2", "--iterations", "1", "--output", str(directory),
    ])
    assert exit_code == 0
    return directory


class TestServingCommands:
    def test_emulate_serving_writes_bundle(self, serving_trace_directory, capsys):
        assert (serving_trace_directory / "manifest.json").exists()

    def test_emulate_serving_rejects_pipeline_parallelism(self, tmp_path, capsys):
        code = main(["emulate", "--workload", "serving", "--parallelism", "2x2x1",
                     "--output", str(tmp_path / "x")])
        assert code == 2
        assert "pipeline parallelism" in capsys.readouterr().err

    def test_emulate_serving_rejects_non_dividing_tp(self, tmp_path, capsys):
        # Raised inside the builder, not the pre-check: still exit 2.
        code = main(["emulate", "--workload", "serving", "--parallelism", "3x1x1",
                     "--output", str(tmp_path / "x")])
        assert code == 2
        assert "does not divide" in capsys.readouterr().err

    def test_predict_serving_target(self, serving_trace_directory, capsys):
        code = main(["predict", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target-serving", "batch=4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted batch=4" in out
        assert "base replay" in out

    def test_predict_rejects_two_targets(self, serving_trace_directory, capsys):
        code = main(["predict", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target-serving", "batch=4", "--target-model", "gpt3-v1"])
        assert code == 2
        assert "exactly one" in capsys.readouterr().err

    def test_predict_serving_on_training_trace_errors(self, trace_directory, capsys):
        code = main(["predict", "--trace", str(trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x2x2",
                     "--micro-batch-size", "1", "--num-microbatches", "2",
                     "--target-serving", "batch=4"])
        assert code == 2
        assert "training iteration" in capsys.readouterr().err

    def test_predict_parallelism_on_serving_trace_errors(self, serving_trace_directory,
                                                         capsys):
        code = main(["predict", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target-parallelism", "2x1x2"])
        assert code == 2
        assert "serving episode" in capsys.readouterr().err

    def test_predict_malformed_serving_target_errors(self, serving_trace_directory,
                                                     capsys):
        code = main(["predict", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target-serving", "decode=4"])
        assert code == 2
        assert "topology" in capsys.readouterr().err

    def test_sweep_serving_axis(self, serving_trace_directory, capsys):
        code = main(["sweep", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--serving", "batch=4", "--serving", "tp=1",
                     "--whatif", "decode_attention:2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch=4" in out
        assert "tp=1" in out
        assert "decode_attention x2" in out

    def test_sweep_serving_axis_on_training_trace_errors(self, trace_directory, capsys):
        code = main(["sweep", "--trace", str(trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x2x2",
                     "--micro-batch-size", "1", "--num-microbatches", "2",
                     "--serving", "batch=4"])
        assert code == 2
        assert "inference base" in capsys.readouterr().err


@pytest.fixture(scope="module")
def stream_trace_directory(tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream") / "bundle"
    exit_code = main([
        "emulate", "--workload", "serving", "--model", "gpt3-15b",
        "--parallelism", "2x1x1", "--requests", "4", "--prompt-length", "64",
        "--decode-length", "2", "--arrival", "poisson:rate=600,n=6,seed=3",
        "--iterations", "1", "--output", str(directory),
    ])
    assert exit_code == 0
    return directory


class TestStreamCommands:
    def test_emulate_stream_reports_arrival(self, tmp_path, capsys):
        code = main([
            "emulate", "--workload", "serving", "--model", "gpt3-15b",
            "--parallelism", "2x1x1", "--requests", "2", "--prompt-length", "64",
            "--decode-length", "2", "--arrival", "trace:0,1.5,4",
            "--iterations", "1", "--output", str(tmp_path / "bundle"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving stream (trace:0,1.5,4, batch cap 2, 64+2 tokens)" in out

    def test_emulate_rejects_malformed_arrival(self, tmp_path, capsys):
        code = main([
            "emulate", "--workload", "serving", "--parallelism", "2x1x1",
            "--arrival", "weibull:rate=10", "--output", str(tmp_path / "x"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_predict_prints_serving_metrics(self, stream_trace_directory, capsys):
        code = main(["predict", "--trace", str(stream_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target", "serving:prompt=128", "--slo-ms", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "predicted prompt=128" in out
        assert "serving metrics (SLO 40 ms):" in out
        # Both the base stream and the predicted target get a metrics row.
        assert "  base: ttft p50/p99" in out
        assert "  prompt=128: ttft p50/p99" in out
        assert "goodput" in out
        assert "within SLO" in out

    def test_predict_unified_target_auto_detects_parallelism(self, trace_directory,
                                                             capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target", "2x2x8",
        ])
        assert code == 0
        assert "predicted 2x2x8" in capsys.readouterr().out

    def test_predict_rejects_two_unified_targets(self, stream_trace_directory,
                                                 capsys):
        code = main(["predict", "--trace", str(stream_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target", "batch=2", "--target", "serving:prompt=128"])
        assert code == 2
        assert "a single --target" in capsys.readouterr().err

    def test_predict_mixing_target_and_legacy_flag_errors(self, stream_trace_directory,
                                                          capsys):
        code = main(["predict", "--trace", str(stream_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target", "batch=2", "--target-serving", "prompt=128"])
        assert code == 2
        assert "a single --target" in capsys.readouterr().err

    def test_sweep_unified_targets_rank_by_goodput(self, stream_trace_directory,
                                                   capsys):
        code = main(["sweep", "--trace", str(stream_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target", "serving:prompt=32",
                     "--target", "serving:prompt=128", "--slo-ms", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput_rps" in out
        assert "ttft_p99_ms" in out
        assert "prompt=32" in out
        assert "prompt=128" in out

    def test_export_timeline_emits_request_tracks(self, stream_trace_directory,
                                                  tmp_path, capsys):
        output = tmp_path / "stream.json"
        code = main(["export-timeline", "--trace", str(stream_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target", "serving:prompt=128", "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-request tracks:" in out
        payload = json.loads(output.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)
        assert payload["otherData"]["sections"] == ["profiled", "replayed",
                                                    "prompt=128"]
        assert payload["otherData"]["request_tracks"] == ["replayed",
                                                          "prompt=128"]
        request_events = [e for e in payload["traceEvents"]
                          if e.get("cat") == "serving-request"]
        assert len(request_events) == 2 * 6 * 2  # 2 spans x 6 requests x 2 tracks


class TestObservabilityCommands:
    def test_profile_flag_writes_a_run_report(self, trace_directory, tmp_path, capsys):
        report_path = tmp_path / "profile.json"
        assert main(["replay", "--trace", str(trace_directory),
                     "--profile", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote pipeline profile to {report_path}" in out
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["schema"] == 1
        assert report["enabled"] is True
        assert report["label"] == "replay"
        assert "study.replay" in report["stages"]
        assert "engine.compile_graph" in report["stages"]
        assert report["wall_time_us"] > 0

    def test_profile_flag_preserves_failure_exit_codes(self, trace_directory,
                                                       tmp_path, capsys):
        report_path = tmp_path / "failed.json"
        code = main(["sweep", "--trace", str(trace_directory),
                     "--profile", str(report_path)])
        assert code == 2  # sweep without axes still fails
        report = json.loads(report_path.read_text(encoding="utf-8"))
        assert report["label"] == "sweep"

    def test_profile_flag_reports_unwritable_path(self, trace_directory,
                                                  tmp_path, capsys):
        code = main(["replay", "--trace", str(trace_directory),
                     "--profile", str(tmp_path / "missing-dir" / "p.json")])
        assert code == 2
        assert "cannot write pipeline profile" in capsys.readouterr().err

    def test_export_timeline_writes_valid_chrome_trace(self, trace_directory,
                                                       tmp_path, capsys):
        output = tmp_path / "timeline.json"
        code = main(["export-timeline", "--trace", str(trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x2x2",
                     "--micro-batch-size", "1", "--num-microbatches", "2",
                     "--output", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "chrome-trace events" in out
        assert "perfetto" in out
        payload = json.loads(output.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)
        assert payload["otherData"]["sections"] == ["profiled", "replayed"]

    def test_export_timeline_with_serving_target(self, serving_trace_directory,
                                                 tmp_path, capsys):
        output = tmp_path / "serving.json"
        code = main(["export-timeline", "--trace", str(serving_trace_directory),
                     "--model", "gpt3-15b", "--parallelism", "2x1x1",
                     "--target-serving", "batch=4", "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text(encoding="utf-8"))
        validate_chrome_trace(payload)
        assert payload["otherData"]["sections"] == ["profiled", "replayed",
                                                    "batch=4"]

    def test_export_timeline_reports_missing_trace_cleanly(self, tmp_path, capsys):
        code = main(["export-timeline", "--trace", str(tmp_path / "nope"),
                     "--output", str(tmp_path / "out.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestHardwareCli:
    def test_predict_hardware_target(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target", "gpu=H200-SXM",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "gpu=H200-SXM" in output
        assert "base replay:" in output

    def test_predict_composite_target(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2",
            "--target", "parallelism=2x2x4,gpu=H200-SXM",
        ])
        assert code == 0
        assert "2x2x4+gpu=H200-SXM" in capsys.readouterr().out

    def test_predict_capacity_refusal_exits_2(self, trace_directory, tmp_path,
                                              capsys):
        # gpt3-15b training state needs ~67 GiB/rank at TPxPP=4: a 1 GiB
        # part must be refused, through the CLI, with the typed message.
        spec = tmp_path / "tiny-gpu.json"
        spec.write_text(json.dumps({
            "name": "TINY", "sm_count": 8, "bf16_tflops": 10.0,
            "fp32_tflops": 5.0, "memory_gb": 1.0,
            "memory_bandwidth_gbps": 100.0, "nvlink_bandwidth_gbps": 50.0,
        }), encoding="utf-8")
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target", f"gpu={spec}",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "would not fit" in err

    def test_predict_unknown_gpu_exits_2(self, trace_directory, capsys):
        code = main([
            "predict", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--target", "gpu=RTX-9090",
        ])
        assert code == 2
        assert "unknown GPU" in capsys.readouterr().err

    def test_sweep_crosses_hardware_axis(self, trace_directory, tmp_path, capsys):
        code = main([
            "sweep", "--trace", str(trace_directory), "--model", "gpt3-15b",
            "--parallelism", "2x2x2", "--micro-batch-size", "1",
            "--num-microbatches", "2", "--target", "2x2x4",
            "--target", "gpu=H200-SXM", "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        output = capsys.readouterr().out
        # baseline + 2x2x4, each on the profiled part and on the H200.
        assert "evaluated 4 scenarios" in output
        assert "2x2x4+gpu=H200-SXM" in output

    def test_legacy_target_flags_warn(self, trace_directory, capsys):
        with pytest.warns(DeprecationWarning,
                          match="--target-parallelism is deprecated"):
            code = main([
                "predict", "--trace", str(trace_directory), "--model",
                "gpt3-15b", "--parallelism", "2x2x2", "--micro-batch-size",
                "1", "--num-microbatches", "2",
                "--target-parallelism", "2x2x4",
            ])
        assert code == 0

    def test_legacy_sweep_targets_flag_warns(self, trace_directory, tmp_path,
                                             capsys):
        with pytest.warns(DeprecationWarning, match="--targets is deprecated"):
            code = main([
                "sweep", "--trace", str(trace_directory), "--model",
                "gpt3-15b", "--parallelism", "2x2x2", "--micro-batch-size",
                "1", "--num-microbatches", "2", "--targets", "2x2x4",
                "--cache-dir", str(tmp_path / "cache"),
            ])
        assert code == 0
