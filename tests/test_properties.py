"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import rank_breakdown
from repro.core.graph import ExecutionGraph
from repro.core.simulator import Simulator
from repro.core.sm_utilization import sm_utilization_timeline
from repro.core.tasks import DependencyType, Task, TaskKind
from repro.hardware.cluster import ClusterSpec, CommunicatorGroups
from repro.hardware.gpu import H100_SXM
from repro.kernels.collectives import collective_time_us
from repro.kernels.gemm import gemm_time_us
from repro.trace.events import Category, TraceEvent
from repro.trace.kineto import KinetoTrace
from repro.workload.pipeline import one_f_one_b_schedule, stage_layers
from tests.conftest import hyp_max_examples

# --------------------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------------------

kernel_interval = st.tuples(
    st.floats(min_value=0.0, max_value=900.0),
    st.floats(min_value=0.1, max_value=100.0),
    st.booleans(),
)


def _trace_from_intervals(intervals) -> KinetoTrace:
    events = [TraceEvent("ProfilerStep#0", Category.USER_ANNOTATION, 0.0, 1000.0, 0, 0)]
    for index, (ts, dur, is_comm) in enumerate(intervals):
        stream = 20 + 2 * index if is_comm else 7  # distinct streams avoid invalid overlap
        args = {"stream": stream}
        if is_comm:
            args["collective"] = "all_reduce"
        events.append(TraceEvent(f"k{index}", Category.KERNEL, ts, dur, 0, stream, args))
    return KinetoTrace(rank=0, events=events)


# --------------------------------------------------------------------------------------
# Breakdown and SM utilisation invariants
# --------------------------------------------------------------------------------------


class TestBreakdownProperties:
    @given(st.lists(kernel_interval, max_size=20))
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_components_non_negative_and_sum_to_window(self, intervals):
        breakdown = rank_breakdown(_trace_from_intervals(intervals))
        for value in breakdown.as_dict().values():
            assert value >= -1e-6
        assert breakdown.total <= 1000.0 + 1e-6
        busy = breakdown.exposed_compute + breakdown.exposed_communication + breakdown.overlapped
        assert busy <= 1000.0 + 1e-6

    @given(st.lists(kernel_interval, max_size=20))
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_overlap_bounded_by_each_class(self, intervals):
        breakdown = rank_breakdown(_trace_from_intervals(intervals))
        compute_total = breakdown.exposed_compute + breakdown.overlapped
        comm_total = breakdown.exposed_communication + breakdown.overlapped
        assert breakdown.overlapped <= compute_total + 1e-6
        assert breakdown.overlapped <= comm_total + 1e-6

    @given(st.lists(kernel_interval, max_size=15),
           st.floats(min_value=10.0, max_value=500.0))
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_sm_utilization_bounded(self, intervals, bin_us):
        timeline = sm_utilization_timeline(_trace_from_intervals(intervals), bin_us=bin_us)
        assert np.all(timeline >= 0.0)
        assert np.all(timeline <= 1.0 + 1e-9)


# --------------------------------------------------------------------------------------
# Pipeline schedule invariants
# --------------------------------------------------------------------------------------


class TestPipelineProperties:
    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=16))
    @settings(max_examples=hyp_max_examples(100), deadline=None)
    def test_schedule_is_a_permutation_of_forward_and_backward(self, microbatches, pp):
        for stage in range(pp):
            schedule = one_f_one_b_schedule(microbatches, pp, stage)
            assert len(schedule) == 2 * microbatches
            forwards = sorted(a.microbatch for a in schedule if a.kind == "F")
            backwards = sorted(a.microbatch for a in schedule if a.kind == "B")
            assert forwards == list(range(microbatches))
            assert backwards == list(range(microbatches))
            seen = set()
            for action in schedule:
                if action.kind == "F":
                    seen.add(action.microbatch)
                else:
                    assert action.microbatch in seen

    @given(st.integers(min_value=1, max_value=128), st.integers(min_value=1, max_value=16))
    @settings(max_examples=hyp_max_examples(100), deadline=None)
    def test_stage_layers_partition_the_model(self, n_layers, pp):
        if pp > n_layers:
            return
        layers = [layer for stage in range(pp) for layer in stage_layers(n_layers, pp, stage)]
        assert sorted(layers) == list(range(n_layers))
        sizes = [len(stage_layers(n_layers, pp, stage)) for stage in range(pp)]
        assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------------------------------------
# Communicator group invariants
# --------------------------------------------------------------------------------------


class TestCommunicatorProperties:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=hyp_max_examples(80), deadline=None)
    def test_groups_partition_the_world(self, tp, pp, dp):
        groups = CommunicatorGroups(tp, pp, dp)
        for collection in (groups.all_tp_groups(), groups.all_dp_groups(), groups.all_pp_groups()):
            ranks = sorted(rank for group in collection for rank in group.ranks)
            assert ranks == list(range(groups.world_size))

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8), st.data())
    @settings(max_examples=hyp_max_examples(80), deadline=None)
    def test_coordinates_roundtrip(self, tp, pp, dp, data):
        groups = CommunicatorGroups(tp, pp, dp)
        rank = data.draw(st.integers(min_value=0, max_value=groups.world_size - 1))
        assert groups.rank_of(groups.tp_index(rank), groups.dp_index(rank),
                              groups.pp_index(rank)) == rank


# --------------------------------------------------------------------------------------
# Cost model invariants
# --------------------------------------------------------------------------------------


class TestCostModelProperties:
    @given(st.integers(min_value=1, max_value=8192), st.integers(min_value=1, max_value=8192),
           st.integers(min_value=1, max_value=8192))
    @settings(max_examples=hyp_max_examples(100), deadline=None)
    def test_gemm_time_positive_and_monotone_in_k(self, m, n, k):
        base = gemm_time_us(m, n, k, 2, H100_SXM)
        double = gemm_time_us(m, n, 2 * k, 2, H100_SXM)
        assert base > 0
        assert double >= base

    @given(st.floats(min_value=1.0, max_value=1e10),
           st.integers(min_value=2, max_value=64))
    @settings(max_examples=hyp_max_examples(100), deadline=None)
    def test_collective_time_monotone_in_size(self, size_bytes, group_size):
        cluster = ClusterSpec(num_gpus=64, gpus_per_node=8)
        ranks = tuple(range(group_size))
        small = collective_time_us("all_reduce", size_bytes, ranks, cluster)
        large = collective_time_us("all_reduce", size_bytes * 2, ranks, cluster)
        assert 0 < small <= large


# --------------------------------------------------------------------------------------
# Simulator invariants on randomly generated DAGs
# --------------------------------------------------------------------------------------


@st.composite
def random_task_graph(draw):
    """A random DAG of CPU/GPU tasks whose edges always point forward."""
    graph = ExecutionGraph()
    n = draw(st.integers(min_value=1, max_value=25))
    tasks = []
    for index in range(n):
        is_gpu = draw(st.booleans())
        duration = draw(st.floats(min_value=0.0, max_value=50.0))
        rank = draw(st.integers(min_value=0, max_value=1))
        if is_gpu:
            stream = draw(st.sampled_from([7, 20, 24]))
            task = Task(task_id=-1, rank=rank, kind=TaskKind.GPU, name=f"g{index}",
                        duration=duration, trace_ts=float(index), stream=stream)
        else:
            thread = draw(st.sampled_from([1, 2]))
            task = Task(task_id=-1, rank=rank, kind=TaskKind.CPU, name=f"c{index}",
                        duration=duration, trace_ts=float(index), thread=thread)
        tasks.append(graph.add_task(task))
    for dst_index in range(1, n):
        for src_index in draw(st.lists(st.integers(min_value=0, max_value=dst_index - 1),
                                       max_size=3, unique=True)):
            graph.add_dependency(tasks[src_index].task_id, tasks[dst_index].task_id,
                                 DependencyType.CPU_INTRA_THREAD)
    return graph


class TestSimulatorProperties:
    @given(random_task_graph())
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_all_tasks_scheduled_and_dependencies_respected(self, graph):
        result = Simulator(graph).run()
        assert len(result.tasks) == len(graph)
        for dependency in graph.dependencies:
            assert result.tasks[dependency.dst].start >= result.tasks[dependency.src].end - 1e-6

    @given(random_task_graph())
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_processors_never_oversubscribed(self, graph):
        result = Simulator(graph).run()
        by_processor = {}
        for simulated in result.tasks.values():
            by_processor.setdefault(simulated.task.processor, []).append(simulated)
        for simulated_tasks in by_processor.values():
            simulated_tasks.sort(key=lambda t: t.start)
            for previous, current in zip(simulated_tasks, simulated_tasks[1:]):
                assert current.start >= previous.end - 1e-6

    @given(random_task_graph())
    @settings(max_examples=hyp_max_examples(60), deadline=None)
    def test_makespan_bounds(self, graph):
        result = Simulator(graph).run()
        total = result.total_time()
        longest_task = max((t.duration for t in graph.tasks.values()), default=0.0)
        serial = sum(t.duration for t in graph.tasks.values())
        assert total >= longest_task - 1e-6
        assert total <= serial + 1e-6
