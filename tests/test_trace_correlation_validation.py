"""Unit tests for correlation linking and trace validation."""

import pytest

from repro.trace.correlation import link_runtime_to_kernels
from repro.trace.events import Category, CudaRuntimeName, TraceEvent
from repro.trace.kineto import KinetoTrace, TraceBundle
from repro.trace.validation import TraceValidationError, validate_trace


def _launch(ts, correlation, tid=1):
    return TraceEvent(name=CudaRuntimeName.LAUNCH_KERNEL, cat=Category.CUDA_RUNTIME,
                      ts=ts, dur=4.0, pid=0, tid=tid, args={"correlation": correlation})


def _kernel(ts, correlation, stream=7, dur=10.0, name="k"):
    return TraceEvent(name=name, cat=Category.KERNEL, ts=ts, dur=dur, pid=0, tid=stream,
                      args={"correlation": correlation, "stream": stream})


class TestCorrelationIndex:
    def test_links_launch_to_kernel(self):
        events = [_launch(0.0, 1), _kernel(10.0, 1)]
        index = link_runtime_to_kernels(events)
        assert index.kernel_for_launch(events[0])[0] is events[1]
        assert index.launch_for_kernel(events[1]) is events[0]

    def test_multiple_kernels_per_correlation(self):
        events = [_launch(0.0, 1), _kernel(10.0, 1), _kernel(25.0, 1)]
        index = link_runtime_to_kernels(events)
        assert len(index.kernel_for_launch(events[0])) == 2

    def test_orphan_kernel_detection(self):
        events = [_kernel(10.0, 99)]
        index = link_runtime_to_kernels(events)
        assert index.orphan_kernels() == [events[0]]
        assert index.launch_for_kernel(events[0]) is None

    def test_events_without_correlation_ignored(self):
        plain = TraceEvent(name="aten::add", cat=Category.CPU_OP, ts=0.0, dur=1.0, pid=0, tid=1)
        index = link_runtime_to_kernels([plain])
        assert not index.launch_by_correlation and not index.kernels_by_correlation


class TestValidation:
    def test_valid_trace_has_no_errors(self):
        trace = KinetoTrace(rank=0, events=[_launch(0.0, 1), _kernel(10.0, 1)])
        report = validate_trace(trace)
        assert report.ok and not report.warnings

    def test_negative_duration_is_error(self):
        bad = TraceEvent(name="x", cat=Category.CPU_OP, ts=0.0, dur=-1.0, pid=0, tid=1)
        report = validate_trace(KinetoTrace(rank=0, events=[bad]))
        assert not report.ok

    def test_overlapping_kernels_on_same_stream_is_error(self):
        trace = KinetoTrace(rank=0, events=[
            _kernel(0.0, 1, dur=20.0), _kernel(10.0, 2, dur=20.0)])
        report = validate_trace(trace)
        assert any("overlap" in error for error in report.errors)

    def test_overlapping_kernels_on_different_streams_is_fine(self):
        trace = KinetoTrace(rank=0, events=[
            _kernel(0.0, 1, stream=7, dur=20.0), _kernel(10.0, 2, stream=20, dur=20.0)])
        assert validate_trace(trace).ok

    def test_launch_without_kernel_is_warning(self):
        report = validate_trace(KinetoTrace(rank=0, events=[_launch(0.0, 5)]))
        assert report.ok and report.warnings

    def test_orphan_kernel_is_warning(self):
        report = validate_trace(KinetoTrace(rank=0, events=[_kernel(0.0, 5)]))
        assert report.ok and report.warnings

    def test_strict_mode_raises(self):
        bad = TraceEvent(name="x", cat=Category.CPU_OP, ts=0.0, dur=-1.0, pid=0, tid=1)
        with pytest.raises(TraceValidationError):
            validate_trace(KinetoTrace(rank=0, events=[bad]), strict=True)

    def test_bundle_validation_aggregates_ranks(self):
        bundle = TraceBundle()
        bundle.add(KinetoTrace(rank=0, events=[_kernel(0.0, 1, dur=20.0),
                                               _kernel(10.0, 2, dur=20.0)]))
        bundle.add(KinetoTrace(rank=1, events=[_launch(0.0, 1), _kernel(10.0, 1)]))
        report = validate_trace(bundle)
        assert len(report.errors) == 1

    def test_emulated_trace_is_valid(self, profiled_bundle):
        assert validate_trace(profiled_bundle).ok
