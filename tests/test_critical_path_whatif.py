"""Tests for critical-path analysis and what-if scenario evaluation."""

import pytest

from repro.core.critical_path import critical_path, kernel_time_summary, launch_overhead_summary
from repro.core.graph import ExecutionGraph
from repro.core.replay import simulate_graph
from repro.core.simulator import Simulator
from repro.core.tasks import DependencyType, Task, TaskKind
from repro.core.whatif import (
    _clone_graph,
    apply_speedup,
    evaluate_scenario,
    remove_launch_overhead,
    speed_up_communication,
    speed_up_kernel_class,
)


def _chain_graph():
    """cpu(10) -> gpu(100) on stream 7, plus an unrelated gpu(20) on stream 20."""
    graph = ExecutionGraph()
    launch = graph.add_task(Task(task_id=-1, rank=0, kind=TaskKind.CPU, name="cudaLaunchKernel",
                                 duration=10.0, trace_ts=0.0, thread=1))
    kernel = graph.add_task(Task(task_id=-1, rank=0, kind=TaskKind.GPU, name="gemm",
                                 duration=100.0, trace_ts=1.0, stream=7,
                                 args={"op_class": "gemm"}))
    side = graph.add_task(Task(task_id=-1, rank=0, kind=TaskKind.GPU, name="nccl_all_reduce",
                               duration=20.0, trace_ts=2.0, stream=20,
                               args={"collective": "all_reduce", "group": "tp",
                                     "op_class": "comm"}))
    graph.add_dependency(launch.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
    return graph, launch, kernel, side


class TestCriticalPath:
    def test_path_follows_the_long_chain(self):
        graph, launch, kernel, side = _chain_graph()
        path = critical_path(graph)
        names = [entry.task.name for entry in path.entries]
        assert names == ["cudaLaunchKernel", "gemm"]
        assert path.total_time == pytest.approx(110.0)

    def test_time_by_category_accounts_for_everything(self):
        graph, *_ = _chain_graph()
        buckets = critical_path(graph).time_by_category()
        assert buckets["cpu"] == pytest.approx(10.0)
        assert buckets["compute"] == pytest.approx(100.0)
        assert buckets["wait"] == pytest.approx(0.0, abs=1e-6)

    def test_empty_graph(self):
        path = critical_path(ExecutionGraph())
        assert len(path) == 0 and path.total_time == 0.0

    def test_accepts_precomputed_simulation(self):
        graph, *_ = _chain_graph()
        simulation = Simulator(graph).run()
        assert critical_path(graph, simulation).total_time == pytest.approx(
            simulation.total_time())

    def test_on_emulated_graph_path_is_contiguous(self, small_graph):
        path = critical_path(small_graph)
        assert len(path) > 10
        # Entries are sorted by start time and never overlap backwards.
        starts = [entry.start for entry in path.entries]
        assert starts == sorted(starts)
        # The critical path accounts for a dominant share of the makespan.
        covered = sum(entry.duration for entry in path.entries)
        assert covered > 0.5 * path.total_time

    def test_time_by_category_is_a_partition_of_the_makespan(self, small_graph):
        path = critical_path(small_graph)
        buckets = path.time_by_category()
        assert all(value >= -1e-6 for value in buckets.values())
        assert sum(buckets.values()) == pytest.approx(path.total_time, rel=1e-6)


class TestKernelTimeSummary:
    def test_summary_shares_sum_to_one(self, small_graph):
        summary = kernel_time_summary(small_graph)
        assert sum(entry.share for entry in summary) == pytest.approx(1.0)
        assert all(entry.count > 0 for entry in summary)

    def test_summary_sorted_by_time(self, small_graph):
        summary = kernel_time_summary(small_graph)
        times = [entry.total_time_us for entry in summary]
        assert times == sorted(times, reverse=True)

    def test_top_k_truncates(self, small_graph):
        assert len(kernel_time_summary(small_graph, top_k=2)) == 2

    def test_gemm_is_a_dominant_class(self, small_graph):
        summary = kernel_time_summary(small_graph, top_k=3)
        assert any(entry.op_class == "gemm" for entry in summary)

    def test_launch_overhead_summary(self, small_graph):
        stats = launch_overhead_summary(small_graph)
        assert stats["count"] > 0
        assert stats["total_us"] > stats["mean_us"] > 0

    def test_launch_overhead_empty_graph(self):
        stats = launch_overhead_summary(ExecutionGraph())
        assert stats["count"] == 0


class TestWhatIf:
    def test_speeding_up_side_stream_changes_nothing(self):
        graph, launch, kernel, side = _chain_graph()
        result = evaluate_scenario(graph, "side", lambda t: t.name == "nccl_all_reduce", 10.0)
        assert result.affected_tasks == 1
        assert result.scenario_time_us == pytest.approx(result.baseline_time_us)
        assert result.improvement_percent == pytest.approx(0.0)

    def test_speeding_up_critical_kernel_helps(self):
        graph, launch, kernel, side = _chain_graph()
        result = speed_up_kernel_class(graph, "gemm", speedup=2.0)
        assert result.saved_us == pytest.approx(50.0)
        assert result.speedup > 1.0

    def test_infinite_speedup_removes_tasks(self):
        graph, launch, kernel, side = _chain_graph()
        result = speed_up_kernel_class(graph, "gemm", speedup=float("inf"))
        # With the 100 us GEMM removed, the side-stream collective (20 us)
        # becomes the longest remaining activity.
        assert result.scenario_time_us == pytest.approx(20.0)

    def test_input_graph_not_mutated(self, small_graph):
        before = [task.duration for task in small_graph.task_list()]
        speed_up_communication(small_graph, speedup=4.0)
        after = [task.duration for task in small_graph.task_list()]
        assert before == after

    def test_comm_speedup_bounded_by_exposed_comm(self, small_graph, small_replay):
        exposed = small_replay.breakdown().exposed_communication
        result = speed_up_communication(small_graph, speedup=float("inf"),
                                        baseline=small_replay)
        assert result.saved_us >= -1e-6
        # Removing communication cannot save more than everything that was not
        # pure compute in the baseline.
        assert result.saved_us <= small_replay.iteration_time_us - 1e-6 or exposed == 0

    def test_group_filter_affects_fewer_tasks(self, small_graph):
        all_comm = speed_up_communication(small_graph, speedup=2.0)
        only_dp = speed_up_communication(small_graph, speedup=2.0, group="dp")
        assert only_dp.affected_tasks < all_comm.affected_tasks
        assert only_dp.saved_us <= all_comm.saved_us + 1e-6

    def test_remove_launch_overhead_never_hurts(self, small_graph):
        result = remove_launch_overhead(small_graph)
        assert result.affected_tasks > 0
        assert result.scenario_time_us <= result.baseline_time_us + 1e-6

    def test_invalid_speedup_rejected(self, small_graph):
        with pytest.raises(ValueError):
            evaluate_scenario(small_graph, "bad", lambda t: True, 0.0)

    def test_baseline_reuse_matches_fresh_simulation(self, small_graph, small_replay):
        with_baseline = speed_up_kernel_class(small_graph, "gemm", 2.0, baseline=small_replay)
        fresh = speed_up_kernel_class(small_graph, "gemm", 2.0)
        assert with_baseline.scenario_time_us == pytest.approx(fresh.scenario_time_us)
        assert with_baseline.baseline_time_us == pytest.approx(fresh.baseline_time_us)

    def test_what_if_result_properties(self):
        from repro.core.whatif import WhatIfResult
        result = WhatIfResult(name="x", baseline_time_us=200.0, scenario_time_us=100.0,
                              affected_tasks=3)
        assert result.saved_us == 100.0
        assert result.speedup == 2.0
        assert result.improvement_percent == 50.0

    def test_evaluate_scenario_infinite_speedup_zeroes_matches(self):
        graph, launch, kernel, side = _chain_graph()
        result = evaluate_scenario(graph, "no-gemm",
                                   lambda t: t.args.get("op_class") == "gemm",
                                   float("inf"))
        assert result.affected_tasks == 1
        # Only the 10 us launch and the 20 us side collective remain.
        assert result.scenario_time_us == pytest.approx(20.0)
        # The input graph keeps its original durations.
        assert graph.tasks[kernel.task_id].duration == pytest.approx(100.0)


class TestCloneGraph:
    def _decorated_graph(self):
        graph = ExecutionGraph(metadata={"parallelism": "2x2x2", "source": "test"})
        launch = graph.add_task(Task(task_id=-1, rank=0, kind=TaskKind.CPU,
                                     name="cudaLaunchKernel", duration=10.0,
                                     trace_ts=0.0, thread=1, correlation=42))
        kernel = graph.add_task(Task(task_id=-1, rank=0, kind=TaskKind.GPU,
                                     name="nccl_send", duration=50.0, trace_ts=1.0,
                                     stream=7, correlation=42,
                                     args={"op_class": "comm", "collective": "send"},
                                     sync_streams=(7, 9),
                                     collective_group="pp_send_0_1"))
        peer = graph.add_task(Task(task_id=-1, rank=1, kind=TaskKind.GPU,
                                   name="nccl_recv", duration=50.0, trace_ts=1.0,
                                   stream=7, collective_group="pp_send_0_1"))
        graph.add_dependency(launch.task_id, kernel.task_id, DependencyType.CPU_TO_GPU)
        graph.add_dependency(kernel.task_id, peer.task_id, DependencyType.GPU_INTER_STREAM)
        return graph

    def test_metadata_survives_and_is_independent(self):
        graph = self._decorated_graph()
        clone = _clone_graph(graph)
        assert clone.metadata == graph.metadata
        clone.metadata["parallelism"] = "9x9x9"
        assert graph.metadata["parallelism"] == "2x2x2"

    def test_dependency_types_survive(self):
        graph = self._decorated_graph()
        clone = _clone_graph(graph)
        assert len(clone.dependencies) == len(graph.dependencies)
        assert sorted(d.dep_type for d in clone.dependencies) == \
            sorted(d.dep_type for d in graph.dependencies)
        # Edges connect the cloned counterparts of the original endpoints.
        names = {(clone.tasks[d.src].name, clone.tasks[d.dst].name)
                 for d in clone.dependencies}
        assert names == {("cudaLaunchKernel", "nccl_send"), ("nccl_send", "nccl_recv")}

    def test_collective_groups_and_sync_streams_survive(self):
        graph = self._decorated_graph()
        clone = _clone_graph(graph)
        cloned = {task.name: task for task in clone.tasks.values()}
        assert cloned["nccl_send"].collective_group == "pp_send_0_1"
        assert cloned["nccl_recv"].collective_group == "pp_send_0_1"
        assert cloned["nccl_send"].sync_streams == (7, 9)
        assert cloned["cudaLaunchKernel"].correlation == 42

    def test_task_args_are_independent_copies(self):
        graph = self._decorated_graph()
        clone = _clone_graph(graph)
        cloned_send = next(t for t in clone.tasks.values() if t.name == "nccl_send")
        original_send = next(t for t in graph.tasks.values() if t.name == "nccl_send")
        cloned_send.args["collective"] = "mutated"
        assert original_send.args["collective"] == "send"

    def test_simulated_times_match(self, small_graph):
        from repro.core.replay import simulate_graph
        original = simulate_graph(small_graph)
        clone = _clone_graph(small_graph)
        assert simulate_graph(clone).iteration_time_us == \
            pytest.approx(original.iteration_time_us)


class TestApplySpeedup:
    def test_dispatches_to_kernel_class(self, small_graph):
        via_dispatch = apply_speedup(small_graph, "kernel_class", op_class="gemm",
                                     speedup=2.0)
        direct = speed_up_kernel_class(small_graph, "gemm", 2.0)
        assert via_dispatch.scenario_time_us == pytest.approx(direct.scenario_time_us)
        assert via_dispatch.affected_tasks == direct.affected_tasks

    def test_dispatches_to_communication(self, small_graph):
        via_dispatch = apply_speedup(small_graph, "communication", group="dp", speedup=4.0)
        direct = speed_up_communication(small_graph, 4.0, group="dp")
        assert via_dispatch.scenario_time_us == pytest.approx(direct.scenario_time_us)

    def test_dispatches_to_launch_overhead(self, small_graph):
        via_dispatch = apply_speedup(small_graph, "launch_overhead")
        direct = remove_launch_overhead(small_graph)
        assert via_dispatch.scenario_time_us == pytest.approx(direct.scenario_time_us)

    def test_rejects_unknown_kind_and_missing_op_class(self, small_graph):
        with pytest.raises(ValueError):
            apply_speedup(small_graph, "wormhole")
        with pytest.raises(ValueError):
            apply_speedup(small_graph, "kernel_class")
