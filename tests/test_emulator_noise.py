"""Unit tests for the emulator noise models."""

import pytest

from repro.emulator.noise import NoiseConfig, NoiseModel, ZeroNoise


class TestNoiseConfig:
    def test_defaults_valid(self):
        NoiseConfig()

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            NoiseConfig(straggler_probability=1.5)

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            NoiseConfig(kernel_sigma=-0.1)


class TestNoiseModel:
    def test_deterministic_given_seed_iteration_rank(self):
        a = NoiseModel(seed=7).rank_stream(1, 3)
        b = NoiseModel(seed=7).rank_stream(1, 3)
        assert [a.kernel_factor(False) for _ in range(5)] == \
            [b.kernel_factor(False) for _ in range(5)]

    def test_different_iterations_differ(self):
        model = NoiseModel(seed=7)
        a = [model.rank_stream(0, 0).kernel_factor(False) for _ in range(3)]
        b = [model.rank_stream(1, 0).kernel_factor(False) for _ in range(3)]
        assert a != b

    def test_profiled_iteration_has_unit_drift(self):
        assert NoiseModel(seed=1).iteration_drift(0) == (1.0, 1.0, 1.0)

    def test_later_iterations_have_nonunit_drift(self):
        compute, comm, cpu = NoiseModel(seed=1).iteration_drift(1)
        assert (compute, comm, cpu) != (1.0, 1.0, 1.0)
        for factor in (compute, comm, cpu):
            assert 0.5 < factor < 2.0

    def test_drift_shared_across_ranks(self):
        model = NoiseModel(seed=3)
        stream_a, stream_b = model.rank_stream(2, 0), model.rank_stream(2, 5)
        assert stream_a._compute_drift == stream_b._compute_drift

    def test_kernel_factors_near_one(self):
        stream = NoiseModel(seed=0).rank_stream(0, 0)
        factors = [stream.kernel_factor(False) for _ in range(200)]
        assert all(0.8 < f < 1.3 for f in factors)

    def test_comm_factors_wider_than_compute(self):
        config = NoiseConfig(straggler_probability=0.0)
        stream = NoiseModel(seed=0, config=config).rank_stream(0, 0)
        compute = [abs(stream.kernel_factor(False) - 1) for _ in range(500)]
        comm = [abs(stream.kernel_factor(True) - 1) for _ in range(500)]
        assert sum(comm) > sum(compute)

    def test_start_skew_within_bound(self):
        config = NoiseConfig(rank_start_skew_us=100.0)
        stream = NoiseModel(seed=0, config=config).rank_stream(0, 0)
        assert 0.0 <= stream.start_skew_us() <= 100.0

    def test_zero_noise_is_identity(self):
        zero = ZeroNoise()
        assert zero.kernel_factor(True) == 1.0
        assert zero.cpu_factor() == 1.0
        assert zero.start_skew_us() == 0.0
