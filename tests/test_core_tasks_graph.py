"""Unit tests for execution-graph tasks and the graph container."""

import pytest

from repro.core.graph import ExecutionGraph
from repro.core.tasks import DependencyType, Task, TaskKind


def cpu_task(task_id=-1, rank=0, name="op", duration=1.0, thread=1, ts=0.0, **kwargs):
    return Task(task_id=task_id, rank=rank, kind=TaskKind.CPU, name=name, duration=duration,
                trace_ts=ts, thread=thread, **kwargs)


def gpu_task(task_id=-1, rank=0, name="kernel", duration=1.0, stream=7, ts=0.0, **kwargs):
    return Task(task_id=task_id, rank=rank, kind=TaskKind.GPU, name=name, duration=duration,
                trace_ts=ts, stream=stream, **kwargs)


class TestTask:
    def test_cpu_task_requires_thread(self):
        with pytest.raises(ValueError):
            Task(task_id=0, rank=0, kind=TaskKind.CPU, name="x", duration=1.0)

    def test_gpu_task_requires_stream(self):
        with pytest.raises(ValueError):
            Task(task_id=0, rank=0, kind=TaskKind.GPU, name="x", duration=1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            cpu_task(duration=-1.0)

    def test_processor_identity(self):
        assert cpu_task(rank=2, thread=5).processor == (2, "thread", 5)
        assert gpu_task(rank=3, stream=20).processor == (3, "stream", 20)

    def test_is_communication_from_args(self):
        assert gpu_task(args={"collective": "all_reduce"}).is_communication
        assert not gpu_task(name="gemm").is_communication
        assert gpu_task(name="ncclDevKernel_AllReduce").is_communication

    def test_cpu_task_never_communication(self):
        assert not cpu_task(args={"collective": "all_reduce"}).is_communication

    def test_sync_detection(self):
        assert gpu_task().is_sync is False
        assert cpu_task(sync_streams=(7,)).is_sync

    def test_metadata_properties(self):
        task = gpu_task(args={"layer": 3, "microbatch": 1, "phase": "forward", "op_class": "gemm"})
        assert (task.layer, task.microbatch, task.phase, task.op_class) == (3, 1, "forward", "gemm")

    def test_copy_is_independent(self):
        task = gpu_task(args={"layer": 1})
        clone = task.copy(duration=5.0)
        clone.args["layer"] = 99
        assert task.args["layer"] == 1
        assert task.duration == 1.0 and clone.duration == 5.0


class TestExecutionGraph:
    def _linear_graph(self, n=4):
        graph = ExecutionGraph()
        tasks = [graph.add_task(cpu_task(ts=float(i))) for i in range(n)]
        for a, b in zip(tasks, tasks[1:]):
            graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_INTRA_THREAD)
        return graph, tasks

    def test_add_task_assigns_unique_ids(self):
        graph = ExecutionGraph()
        a = graph.add_task(cpu_task())
        b = graph.add_task(cpu_task())
        assert a.task_id != b.task_id
        assert len(graph) == 2

    def test_dependency_to_unknown_task_raises(self):
        graph, tasks = self._linear_graph(2)
        with pytest.raises(KeyError):
            graph.add_dependency(tasks[0].task_id, 999, DependencyType.CPU_INTRA_THREAD)

    def test_self_dependency_rejected(self):
        graph, tasks = self._linear_graph(1)
        with pytest.raises(ValueError):
            graph.add_dependency(tasks[0].task_id, tasks[0].task_id,
                                 DependencyType.CPU_INTRA_THREAD)

    def test_successors_and_predecessors(self):
        graph, tasks = self._linear_graph(3)
        assert graph.successors(tasks[0].task_id) == [tasks[1].task_id]
        assert graph.predecessors(tasks[2].task_id) == [tasks[1].task_id]

    def test_topological_order_respects_edges(self):
        graph, tasks = self._linear_graph(5)
        order = graph.topological_order()
        positions = {task_id: index for index, task_id in enumerate(order)}
        for dependency in graph.dependencies:
            assert positions[dependency.src] < positions[dependency.dst]

    def test_acyclic_detection(self):
        graph, tasks = self._linear_graph(3)
        assert graph.is_acyclic()
        graph.add_dependency(tasks[2].task_id, tasks[0].task_id, DependencyType.CPU_INTRA_THREAD)
        assert not graph.is_acyclic()
        with pytest.raises(ValueError):
            graph.validate()

    def test_dependency_counts_by_type(self):
        graph = ExecutionGraph()
        a = graph.add_task(cpu_task())
        b = graph.add_task(gpu_task())
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_TO_GPU)
        counts = graph.dependency_counts()
        assert counts[DependencyType.CPU_TO_GPU] == 1
        assert counts[DependencyType.GPU_INTER_STREAM] == 0

    def test_task_selectors(self):
        graph = ExecutionGraph()
        graph.add_task(cpu_task(rank=0, ts=1.0))
        graph.add_task(gpu_task(rank=0, stream=7, ts=2.0))
        graph.add_task(gpu_task(rank=1, stream=20, ts=3.0))
        assert len(graph.cpu_tasks()) == 1
        assert len(graph.gpu_tasks()) == 2
        assert len(graph.gpu_tasks(rank=1)) == 1
        assert graph.ranks() == [0, 1]
        assert graph.streams(0) == [7]

    def test_tasks_on_stream_sorted_by_trace_order(self):
        graph = ExecutionGraph()
        late = graph.add_task(gpu_task(ts=10.0, name="late"))
        early = graph.add_task(gpu_task(ts=5.0, name="early"))
        names = [t.name for t in graph.tasks_on_stream(0, 7)]
        assert names == ["early", "late"]
        assert late.task_id != early.task_id

    def test_collective_groups(self):
        graph = ExecutionGraph()
        graph.add_task(gpu_task(rank=0, collective_group="act:1:0"))
        graph.add_task(gpu_task(rank=1, collective_group="act:1:0"))
        graph.add_task(gpu_task(rank=0))
        groups = graph.collective_groups()
        assert set(groups) == {"act:1:0"}
        assert len(groups["act:1:0"]) == 2

    def test_to_networkx_roundtrip_counts(self):
        graph, _ = self._linear_graph(4)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 3

    def test_subgraph_for_ranks(self):
        graph = ExecutionGraph()
        a = graph.add_task(cpu_task(rank=0))
        b = graph.add_task(gpu_task(rank=0))
        graph.add_task(gpu_task(rank=1))
        graph.add_dependency(a.task_id, b.task_id, DependencyType.CPU_TO_GPU)
        subgraph = graph.subgraph_for_ranks([0])
        assert subgraph.ranks() == [0]
        assert len(subgraph) == 2
        assert len(subgraph.dependencies) == 1
