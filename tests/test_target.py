"""Tests for the unified prediction-target type.

:func:`repro.parse_target` is the single coercion point every
``Study.predict/whatif/sweep`` target routes through; these tests lock
its auto-detection, prefix handling and canonicalisation, plus the
deprecation path for the pre-unification ``model=`` / ``serving=``
keyword arguments.
"""

from __future__ import annotations

import pytest

from repro import ServingTarget, Study, Target, parse_target
from repro.api import (
    KIND_ARCHITECTURE,
    KIND_PARALLELISM,
    KIND_SERVING,
    PredictError,
)
from repro.workload.inference import InferenceConfig
from repro.workload.parallelism import ParallelismConfig
from tests.conftest import tiny_model


class TestParseTarget:
    def test_parallelism_auto_detected(self):
        target = parse_target("2x2x4")
        assert target == Target(KIND_PARALLELISM, "2x2x4")

    def test_serving_auto_detected_by_equals(self):
        target = parse_target("batch=16,prompt=256")
        assert target.kind == KIND_SERVING

    def test_model_name_is_the_fallback(self):
        target = parse_target("gpt3-44b")
        assert target == Target(KIND_ARCHITECTURE, "gpt3-44b")

    @pytest.mark.parametrize("text,kind", [
        ("parallelism:2x2x4", KIND_PARALLELISM),
        ("serving:batch=16", KIND_SERVING),
        ("model:gpt3-44b", KIND_ARCHITECTURE),
        ("architecture:gpt3-44b", KIND_ARCHITECTURE),
    ])
    def test_explicit_prefixes(self, text, kind):
        assert parse_target(text).kind == kind

    def test_prefix_overrides_auto_detection(self):
        # A model whose name looks nothing like NxNxN still routes by prefix.
        assert parse_target("model:2x2x4").kind == KIND_ARCHITECTURE

    def test_serving_label_is_canonicalised(self):
        # Knob order must not create distinct memoization keys.
        a = parse_target("serving:tp=2,batch=16")
        b = parse_target("serving:batch=16,tp=2")
        assert a == b

    def test_typed_objects_map_to_their_kind(self):
        assert parse_target(ParallelismConfig.parse("2x2x4")) == \
            Target(KIND_PARALLELISM, "2x2x4")
        serving = ServingTarget.parse("batch=16")
        assert parse_target(serving) == Target(KIND_SERVING, serving.label())
        model = tiny_model()
        target = parse_target(model)
        assert (target.kind, target.label, target.model) == \
            (KIND_ARCHITECTURE, model.name, model)

    def test_target_passes_through(self):
        target = Target(KIND_PARALLELISM, "2x2x4")
        assert parse_target(target) is target

    @pytest.mark.parametrize("value", [
        "", "   ", "parallelism:", "serving:", "parallelism:2x2",
        "serving:decode=4", 42, None,
    ])
    def test_malformed_targets_raise_predict_error(self, value):
        with pytest.raises(PredictError):
            parse_target(value)

    def test_str_is_prefixed_label(self):
        assert str(Target(KIND_SERVING, "batch=16")) == "serving:batch=16"

    def test_target_validates_kind_and_payload(self):
        with pytest.raises(PredictError):
            Target("cluster", "x")
        with pytest.raises(PredictError):
            Target(KIND_SERVING, "batch=16", model=tiny_model())


class TestLegacyKeywordParity:
    """The deprecated ``model=`` / ``serving=`` kwargs must behave exactly
    like the equivalent ``target=`` spelling (same memoized objects)."""

    @pytest.fixture(scope="class")
    def training_study(self):
        return Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=11)

    @pytest.fixture(scope="class")
    def serving_study(self):
        inference = InferenceConfig(batch_size=4, prompt_length=64,
                                    decode_length=2)
        return Study.from_emulation(tiny_model(), "2x1x1", inference=inference,
                                    iterations=1, seed=11)

    def test_model_kwarg_warns_and_matches_target(self, training_study):
        unified = training_study.predict("model:gpt3-44b")
        with pytest.warns(DeprecationWarning, match="model= is deprecated"):
            legacy = training_study.predict(model="gpt3-44b")
        assert legacy is unified  # same memoization key

    def test_serving_kwarg_warns_and_matches_target(self, serving_study):
        unified = serving_study.predict("serving:batch=2")
        with pytest.warns(DeprecationWarning, match="serving= is deprecated"):
            legacy = serving_study.predict(serving="batch=2")
        assert legacy is unified

    def test_positional_parallelism_stays_undeprecated(self, training_study, recwarn):
        prediction = training_study.predict("2x1x2")
        assert prediction.label == "2x1x2"
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_two_kwargs_still_rejected(self, training_study):
        with pytest.raises(Exception, match="exactly one"):
            training_study.predict(model="gpt3-44b", serving="batch=2")

    def test_target_accepts_all_three_kinds(self, serving_study, training_study):
        assert training_study.predict("2x1x2").label == "2x1x2"
        assert training_study.predict("model:gpt3-44b").label == "gpt3-44b"
        assert serving_study.predict("serving:batch=2").label == "batch=2"
