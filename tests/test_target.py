"""Tests for the unified prediction-target type.

:func:`repro.parse_target` is the single coercion point every
``Study.predict/whatif/sweep`` target routes through; these tests lock
its auto-detection, prefix handling and canonicalisation, plus the
deprecation path for the pre-unification ``model=`` / ``serving=``
keyword arguments.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ServingTarget, Study, Target, parse_target
from repro.api import (
    KIND_ARCHITECTURE,
    KIND_HARDWARE,
    KIND_PARALLELISM,
    KIND_SERVING,
    PredictError,
)
from repro.hardware.gpu import B200, H200_SXM, GPUSpec, gpu_names
from repro.workload.inference import InferenceConfig
from repro.workload.parallelism import ParallelismConfig
from tests.conftest import hyp_max_examples, tiny_model


class TestParseTarget:
    def test_parallelism_auto_detected(self):
        target = parse_target("2x2x4")
        assert target == Target(KIND_PARALLELISM, "2x2x4")

    def test_serving_auto_detected_by_equals(self):
        target = parse_target("batch=16,prompt=256")
        assert target.kind == KIND_SERVING

    def test_model_name_is_the_fallback(self):
        target = parse_target("gpt3-44b")
        assert target == Target(KIND_ARCHITECTURE, "gpt3-44b")

    @pytest.mark.parametrize("text,kind", [
        ("parallelism:2x2x4", KIND_PARALLELISM),
        ("serving:batch=16", KIND_SERVING),
        ("model:gpt3-44b", KIND_ARCHITECTURE),
        ("architecture:gpt3-44b", KIND_ARCHITECTURE),
    ])
    def test_explicit_prefixes(self, text, kind):
        assert parse_target(text).kind == kind

    def test_prefix_overrides_auto_detection(self):
        # A model whose name looks nothing like NxNxN still routes by prefix.
        assert parse_target("model:2x2x4").kind == KIND_ARCHITECTURE

    def test_serving_label_is_canonicalised(self):
        # Knob order must not create distinct memoization keys.
        a = parse_target("serving:tp=2,batch=16")
        b = parse_target("serving:batch=16,tp=2")
        assert a == b

    def test_typed_objects_map_to_their_kind(self):
        assert parse_target(ParallelismConfig.parse("2x2x4")) == \
            Target(KIND_PARALLELISM, "2x2x4")
        serving = ServingTarget.parse("batch=16")
        assert parse_target(serving) == Target(KIND_SERVING, serving.label())
        model = tiny_model()
        target = parse_target(model)
        assert (target.kind, target.label, target.model) == \
            (KIND_ARCHITECTURE, model.name, model)

    def test_target_passes_through(self):
        target = Target(KIND_PARALLELISM, "2x2x4")
        assert parse_target(target) is target

    @pytest.mark.parametrize("value", [
        "", "   ", "parallelism:", "serving:", "parallelism:2x2",
        "serving:decode=4", 42, None,
    ])
    def test_malformed_targets_raise_predict_error(self, value):
        with pytest.raises(PredictError):
            parse_target(value)

    def test_str_is_prefixed_label(self):
        assert str(Target(KIND_SERVING, "batch=16")) == "serving:batch=16"

    def test_target_validates_kind_and_payload(self):
        with pytest.raises(PredictError):
            Target("cluster", "x")
        with pytest.raises(PredictError):
            Target(KIND_SERVING, "batch=16", model=tiny_model())


class TestLegacyKeywordParity:
    """The deprecated ``model=`` / ``serving=`` kwargs must behave exactly
    like the equivalent ``target=`` spelling (same memoized objects)."""

    @pytest.fixture(scope="class")
    def training_study(self):
        return Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=11)

    @pytest.fixture(scope="class")
    def serving_study(self):
        inference = InferenceConfig(batch_size=4, prompt_length=64,
                                    decode_length=2)
        return Study.from_emulation(tiny_model(), "2x1x1", inference=inference,
                                    iterations=1, seed=11)

    def test_model_kwarg_warns_and_matches_target(self, training_study):
        unified = training_study.predict("model:gpt3-44b")
        with pytest.warns(DeprecationWarning, match="model= is deprecated"):
            legacy = training_study.predict(model="gpt3-44b")
        assert legacy is unified  # same memoization key

    def test_serving_kwarg_warns_and_matches_target(self, serving_study):
        unified = serving_study.predict("serving:batch=2")
        with pytest.warns(DeprecationWarning, match="serving= is deprecated"):
            legacy = serving_study.predict(serving="batch=2")
        assert legacy is unified

    def test_positional_parallelism_stays_undeprecated(self, training_study, recwarn):
        prediction = training_study.predict("2x1x2")
        assert prediction.label == "2x1x2"
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]

    def test_two_kwargs_still_rejected(self, training_study):
        with pytest.raises(Exception, match="exactly one"):
            training_study.predict(model="gpt3-44b", serving="batch=2")

    def test_target_accepts_all_three_kinds(self, serving_study, training_study):
        assert training_study.predict("2x1x2").label == "2x1x2"
        assert training_study.predict("model:gpt3-44b").label == "gpt3-44b"
        assert serving_study.predict("serving:batch=2").label == "batch=2"


class TestHardwareTargets:
    """The composable v2 grammar: ``gpu=`` as a first-class axis."""

    def test_pure_hardware_auto_detected(self):
        target = parse_target("gpu=H200-SXM")
        assert target == Target(KIND_HARDWARE, "gpu=H200-SXM")

    def test_hardware_prefix(self):
        assert parse_target("hardware:H200-SXM") == \
            Target(KIND_HARDWARE, "gpu=H200-SXM")
        assert parse_target("hardware:gpu=H200-SXM") == \
            Target(KIND_HARDWARE, "gpu=H200-SXM")

    def test_gpu_name_is_canonicalised(self):
        # Registry lookup is case- and separator-insensitive; the label
        # always carries the marketing name, so every spelling shares one
        # memoization/cache key.
        for spelling in ("gpu=h200-sxm", "gpu=H200_SXM", "gpu=H200-SXM "):
            assert parse_target(spelling).label == "gpu=H200-SXM"

    def test_serving_composes_with_hardware(self):
        target = parse_target("tp=2,batch=16,gpu=B200")
        assert target.kind == "serving+hardware"
        assert target.label == "batch=16,tp=2+gpu=B200"
        assert target.manipulations == (
            (KIND_SERVING, "batch=16,tp=2"), (KIND_HARDWARE, "gpu=B200"))

    def test_parallelism_selector_composes_with_hardware(self):
        target = parse_target("parallelism=2x2x8,gpu=H200-SXM")
        assert target.kind == "parallelism+hardware"
        assert target.manipulations == (
            (KIND_PARALLELISM, "2x2x8"), (KIND_HARDWARE, "gpu=H200-SXM"))

    def test_model_selector_composes_with_hardware(self):
        target = parse_target("model=gpt3-44b,gpu=B200")
        assert target.manipulations == (
            (KIND_ARCHITECTURE, "gpt3-44b"), (KIND_HARDWARE, "gpu=B200"))

    def test_serving_prefix_composes_with_hardware(self):
        target = parse_target("serving:batch=64,gpu=B200")
        assert target.kind == "serving+hardware"
        assert target.label == "batch=64+gpu=B200"

    def test_gpu_spec_object_maps_to_hardware_kind(self):
        target = parse_target(H200_SXM)
        # Registry specs carry no payload: the label alone resolves them.
        assert target == Target(KIND_HARDWARE, "gpu=H200-SXM")
        custom = GPUSpec(name="X100", sm_count=100, bf16_tflops=500.0,
                         fp32_tflops=50.0, memory_gb=64.0,
                         memory_bandwidth_gbps=2000.0,
                         nvlink_bandwidth_gbps=400.0)
        resolved = parse_target(custom)
        assert resolved.label == "gpu=X100"
        assert resolved.gpu == custom

    def test_json_spec_file_target(self, tmp_path):
        path = tmp_path / "x100.json"
        path.write_text(
            '{"name": "X100", "sm_count": 100, "bf16_tflops": 500.0,'
            ' "fp32_tflops": 50.0, "memory_gb": 64.0,'
            ' "memory_bandwidth_gbps": 2000.0,'
            ' "nvlink_bandwidth_gbps": 400.0}', encoding="utf-8")
        target = parse_target(f"gpu={path}")
        assert target.label == "gpu=X100"
        assert target.gpu is not None and target.gpu.name == "X100"

    @pytest.mark.parametrize("text", [
        "gpu=",                            # empty value
        "gpu=NoSuchGPU",                   # unknown registry name
        "gpu=B200,gpu=H200-SXM",           # two hardware selections
        "parallelism=2x2x4,model=gpt3-44b,gpu=B200",  # two workload axes
        "parallelism=2x2x4,batch=16,gpu=B200",        # selector + serving knobs
        "hardware:batch=16",               # non-gpu item under hardware prefix
        "serving:parallelism=2x2x4,gpu=B200",         # selector/prefix mismatch
        "batch=16,,gpu=B200",              # empty item
    ])
    def test_malformed_composites_raise_predict_error(self, text):
        with pytest.raises(PredictError):
            parse_target(text)

    def test_equivalent_spellings_share_one_target(self):
        spellings = ["tp=2,gpu=B200", "gpu=b200,tp=2", "serving:tp=2,gpu=B200"]
        targets = {parse_target(text) for text in spellings}
        assert len(targets) == 1

    def test_composite_str_round_trips(self):
        for text in ("tp=2,batch=16,gpu=B200", "parallelism=2x2x8,gpu=H200-SXM",
                     "model=gpt3-44b,gpu=B200", "gpu=A100-SXM"):
            target = parse_target(text)
            assert parse_target(str(target)) == target

    def test_target_validates_composite_shape_and_gpu_payload(self):
        with pytest.raises(PredictError):
            Target("hardware+serving", "gpu=B200+batch=16")  # wrong order
        with pytest.raises(PredictError):
            Target("serving+hardware", "batch=16")  # segment count mismatch
        with pytest.raises(PredictError):
            Target(KIND_SERVING, "batch=16", gpu=B200)  # payload on wrong kind


def _target_strategy():
    parallelism = st.builds(
        lambda tp, pp, dp: Target(KIND_PARALLELISM, f"{tp}x{pp}x{dp}"),
        st.integers(1, 8), st.integers(1, 8), st.integers(1, 8))
    architecture = st.sampled_from(
        ["gpt3-15b", "gpt3-44b", "tiny-gpt", "my-variant"]).map(
        lambda name: Target(KIND_ARCHITECTURE, name))
    serving = st.builds(
        lambda batch, prompt, tp: ServingTarget(
            batch_size=batch, prompt_length=prompt, tensor_parallel=tp),
        st.one_of(st.none(), st.integers(1, 64)),
        st.one_of(st.none(), st.integers(16, 2048)),
        st.one_of(st.none(), st.integers(1, 8)),
    ).filter(lambda s: s.label()).map(
        lambda s: Target(KIND_SERVING, s.label()))
    workload = st.one_of(parallelism, architecture, serving)
    gpu = st.sampled_from(sorted(gpu_names()))
    composite = st.builds(
        lambda w, name: Target(f"{w.kind}+{KIND_HARDWARE}",
                               f"{w.label}+gpu={name}"),
        workload, gpu)
    hardware = gpu.map(lambda name: Target(KIND_HARDWARE, f"gpu={name}"))
    return st.one_of(workload, hardware, composite)


class TestTargetRoundTripProperty:
    @settings(max_examples=hyp_max_examples(200), deadline=None)
    @given(target=_target_strategy())
    def test_parse_of_str_is_identity(self, target):
        assert parse_target(str(target)) == target
