"""Tests for the sweep runner, cache integration and Pareto analysis.

One small GPT-3 bundle is emulated per module; every test sweeps it.  The
acceptance-critical properties live here: parallel and serial runs produce
identical ranked results, and a repeated run is served from the cache
without replaying the base trace.
"""

import pytest

from repro import sweep
from repro.sweep import (
    ScenarioResult,
    SweepCache,
    SweepSpec,
    WhatIfSpec,
    format_report,
    pareto_frontier,
    rank_results,
    run_sweep,
)
from repro.emulator.api import emulate
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

BASE_PARALLELISM = "2x1x2"


@pytest.fixture(scope="module")
def base_bundle():
    model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse(BASE_PARALLELISM)
    training = TrainingConfig(micro_batch_size=1, num_microbatches=2)
    return emulate(model, parallel, training, iterations=1, seed=7).profiled


@pytest.fixture(scope="module")
def small_spec():
    return SweepSpec(
        base_model="gpt3-15b",
        base_parallelism=BASE_PARALLELISM,
        micro_batch_size=1,
        num_microbatches=2,
        parallelism=("2x1x4", "2x2x1"),
        models=("gpt3-v1",),
        whatif=(WhatIfSpec(kind="kernel_class", op_class="gemm", speedup=2.0),
                WhatIfSpec(kind="launch_overhead")),
    )


@pytest.fixture(scope="module")
def serial_result(base_bundle, small_spec):
    return run_sweep(base_bundle, small_spec, workers=1)


def _ranked_view(result):
    return [(r.label, r.iteration_time_us, r.world_size) for r in result.ranked()]


class TestRunSweep:
    def test_evaluates_the_full_grid(self, serial_result, small_spec):
        assert len(serial_result) == len(small_spec.expand())
        assert [r.label for r in serial_result.results] == \
            [s.label for s in small_spec.expand()]

    def test_baseline_matches_replay(self, serial_result):
        baseline = next(r for r in serial_result.results
                        if r.kind == "baseline" and r.whatif is None)
        assert baseline.iteration_time_us == pytest.approx(serial_result.base_time_us)
        assert baseline.speedup_vs_base == pytest.approx(1.0)

    def test_world_sizes_follow_targets(self, serial_result):
        by_label = {r.label: r for r in serial_result.results}
        assert by_label["base"].world_size == 4
        assert by_label["2x1x4"].world_size == 8
        assert by_label["2x2x1"].world_size == 4
        assert by_label["gpt3-v1"].world_size == 4

    def test_whatif_never_slower_than_plain_config(self, serial_result):
        by_label = {r.label: r for r in serial_result.results}
        for result in serial_result.results:
            if result.whatif is None:
                continue
            plain = by_label[result.label.split(" +")[0].replace("base", "base")]
            assert result.iteration_time_us <= plain.iteration_time_us + 1e-6
            assert result.affected_tasks > 0

    def test_parallel_matches_serial(self, base_bundle, small_spec, serial_result):
        parallel = run_sweep(base_bundle, small_spec, workers=2)
        assert _ranked_view(parallel) == _ranked_view(serial_result)

    def test_invalid_spec_rejected_before_work(self, base_bundle):
        spec = SweepSpec(base_parallelism=BASE_PARALLELISM, parallelism=("4x1x2",))
        with pytest.raises(ValueError, match="tensor parallelism"):
            run_sweep(base_bundle, spec)

    def test_scenarios_per_second_positive(self, serial_result):
        assert serial_result.scenarios_per_second > 0
        assert serial_result.best().iteration_time_us == \
            min(r.iteration_time_us for r in serial_result.results)


class TestCacheIntegration:
    def test_second_run_is_fully_cached_and_identical(self, base_bundle, small_spec,
                                                      serial_result, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cold = run_sweep(base_bundle, small_spec, cache=cache)
        assert cold.cache_stats.misses == len(cold)
        assert not any(r.from_cache for r in cold.results)

        warm_cache = SweepCache(tmp_path / "cache")
        warm = run_sweep(base_bundle, small_spec, cache=warm_cache)
        assert warm_cache.stats.hits == len(warm)
        assert all(r.from_cache for r in warm.results)
        assert _ranked_view(warm) == _ranked_view(cold) == _ranked_view(serial_result)

    def test_new_scenarios_are_incremental(self, base_bundle, small_spec, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(base_bundle, small_spec, cache=cache)
        extended = SweepSpec(
            base_model=small_spec.base_model,
            base_parallelism=small_spec.base_parallelism,
            micro_batch_size=small_spec.micro_batch_size,
            num_microbatches=small_spec.num_microbatches,
            parallelism=small_spec.parallelism + ("2x1x8",),
            models=small_spec.models,
            whatif=small_spec.whatif,
        )
        cache_two = SweepCache(tmp_path / "cache")
        result = run_sweep(base_bundle, extended, cache=cache_two)
        # Only the three scenarios of the new 2x1x8 configuration are evaluated.
        assert cache_two.stats.misses == 3
        assert cache_two.stats.hits == len(result) - 3

    def test_force_reevaluates(self, base_bundle, small_spec, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(base_bundle, small_spec, cache=cache)
        forced_cache = SweepCache(tmp_path / "cache")
        forced = run_sweep(base_bundle, small_spec, cache=forced_cache, force=True)
        assert forced_cache.stats.hits == 0
        assert not any(r.from_cache for r in forced.results)

    def test_different_trace_does_not_hit(self, base_bundle, small_spec, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        run_sweep(base_bundle, small_spec, cache=cache)
        other = emulate(gpt3_model("gpt3-15b"),
                        ParallelismConfig.parse(BASE_PARALLELISM),
                        TrainingConfig(micro_batch_size=1, num_microbatches=2),
                        iterations=1, seed=8).profiled
        cache_two = SweepCache(tmp_path / "cache")
        run_sweep(other, small_spec, cache=cache_two)
        assert cache_two.stats.hits == 0


class TestSweepApi:
    def test_sweep_accepts_trace_directory_and_spec_mapping(self, base_bundle,
                                                            small_spec, tmp_path):
        trace_dir = tmp_path / "bundle"
        base_bundle.save(trace_dir)
        result = sweep(trace_dir, small_spec.to_json(), cache_dir=tmp_path / "cache")
        assert len(result) == len(small_spec.expand())
        repeat = sweep(trace_dir, small_spec.to_json(), cache_dir=tmp_path / "cache")
        assert all(r.from_cache for r in repeat.results)

    def test_exported_from_package_root(self):
        import repro
        assert repro.sweep is sweep
        assert repro.SweepSpec is SweepSpec

    def test_callable_module_keeps_attribute_access(self):
        # ``repro.sweep`` is callable, but ordinary module idioms still work.
        import repro.sweep as sweep_module
        assert callable(sweep_module)
        assert sweep_module.SweepSpec is SweepSpec
        assert sweep_module.run_sweep is run_sweep


class TestAnalysis:
    def _mk(self, label, world, time_us):
        return ScenarioResult(label=label, kind="parallelism", target=label,
                              whatif=None, world_size=world,
                              iteration_time_us=time_us, base_time_us=1000.0)

    def test_rank_orders_by_time_then_label(self):
        results = [self._mk("b", 8, 200.0), self._mk("a", 8, 200.0),
                   self._mk("c", 8, 100.0)]
        assert [r.label for r in rank_results(results)] == ["c", "a", "b"]

    def test_pareto_drops_dominated_points(self):
        results = [
            self._mk("small-slow", 4, 400.0),
            self._mk("small-dominated", 4, 500.0),
            self._mk("big-fast", 16, 100.0),
            self._mk("big-dominated", 16, 450.0),
        ]
        frontier = [r.label for r in pareto_frontier(results)]
        assert frontier == ["small-slow", "big-fast"]

    def test_pareto_keeps_duplicate_optima(self):
        results = [self._mk("x", 4, 100.0), self._mk("y", 4, 100.0)]
        assert len(pareto_frontier(results)) == 2

    def test_pareto_on_real_sweep_is_sorted_and_nonempty(self, serial_result):
        frontier = pareto_frontier(serial_result.results)
        assert frontier
        sizes = [r.world_size for r in frontier]
        assert sizes == sorted(sizes)
        times = [r.iteration_time_us for r in frontier]
        assert times == sorted(times, reverse=True)

    def test_format_report_mentions_everything(self, serial_result):
        report = format_report(serial_result, top=3)
        assert "ranked scenarios (top 3)" in report
        assert "pareto frontier" in report
        assert "scenarios/s" in report
