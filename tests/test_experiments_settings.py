"""Tests for the experiment definitions and evaluation settings."""


from repro.experiments.figures import (
    FIG5_CONFIGS,
    FIG7A_CONFIGS,
    FIG7B_CONFIGS,
    FIG7C_CONFIGS,
    FIG8_VARIANTS,
)
from repro.experiments.settings import EvaluationSettings
from repro.workload.model_config import GPT3_VARIANTS, gpt3_model
from repro.workload.parallelism import ParallelismConfig


class TestEvaluationSettings:
    def test_default_settings(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST", raising=False)
        settings = EvaluationSettings.default()
        assert settings.num_microbatches == 4
        assert settings.training().micro_batch_size == settings.micro_batch_size

    def test_fast_mode_reduces_microbatches(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        assert EvaluationSettings.default().num_microbatches == 2

    def test_training_config_round_trips_fields(self):
        settings = EvaluationSettings(micro_batch_size=3, num_microbatches=5,
                                      sequence_length=1024)
        training = settings.training()
        assert training.micro_batch_size == 3
        assert training.num_microbatches == 5
        assert training.sequence_length == 1024


class TestExperimentDefinitions:
    def test_fig5_grid_matches_paper_shape(self):
        assert set(FIG5_CONFIGS) == {"gpt3-15b", "gpt3-44b", "gpt3-117b", "gpt3-175b"}
        for configs in FIG5_CONFIGS.values():
            assert len(configs) == 6

    def test_fig5_configs_are_valid_parallelism_labels(self):
        for model_name, configs in FIG5_CONFIGS.items():
            model = gpt3_model(model_name)
            for label in configs:
                parallel = ParallelismConfig.parse(label)
                parallel.validate_for_model(model.n_layers)
                assert parallel.world_size <= 512  # the paper's cluster size

    def test_fig5_largest_configuration_uses_hundreds_of_gpus(self):
        world_sizes = [ParallelismConfig.parse(label).world_size
                       for labels in FIG5_CONFIGS.values() for label in labels]
        assert max(world_sizes) >= 256

    def test_fig7_targets_share_the_base_tensor_parallelism(self):
        for label in FIG7A_CONFIGS + FIG7B_CONFIGS + FIG7C_CONFIGS:
            assert ParallelismConfig.parse(label).tp == 2

    def test_fig7a_varies_only_data_parallelism(self):
        degrees = [ParallelismConfig.parse(label) for label in FIG7A_CONFIGS]
        assert all(p.pp == 2 for p in degrees)
        assert [p.dp for p in degrees] == [8, 16, 32]

    def test_fig7b_varies_only_pipeline_parallelism(self):
        degrees = [ParallelismConfig.parse(label) for label in FIG7B_CONFIGS]
        assert all(p.dp == 4 for p in degrees)
        assert [p.pp for p in degrees] == [4, 8, 16]

    def test_fig8_variants_exist_in_table2(self):
        for name in FIG8_VARIANTS:
            assert name in GPT3_VARIANTS
