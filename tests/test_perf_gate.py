"""Tests for the CI perf-regression gate (benchmarks/perf_gate.py)."""

from __future__ import annotations

import json

import pytest

from benchmarks.perf_gate import check, load_metrics, main, regression_factor


def metric(value, higher_is_better=False, unit="ms"):
    return {"value": value, "higher_is_better": higher_is_better, "unit": unit}


class TestRegressionFactor:
    def test_lower_is_better_regression(self):
        assert regression_factor(metric(10.0), metric(25.0)) == pytest.approx(2.5)

    def test_lower_is_better_improvement(self):
        assert regression_factor(metric(10.0), metric(5.0)) == pytest.approx(0.5)

    def test_higher_is_better_regression(self):
        baseline = metric(30.0, higher_is_better=True, unit="scenarios/s")
        current = metric(10.0, higher_is_better=True, unit="scenarios/s")
        assert regression_factor(baseline, current) == pytest.approx(3.0)

    def test_non_positive_values_rejected(self):
        with pytest.raises(ValueError):
            regression_factor(metric(0.0), metric(1.0))


class TestCheck:
    def test_passes_within_budget(self):
        baseline = {"latency": metric(10.0), "speedup": metric(5.0, True, "x")}
        current = {"latency": metric(15.0), "speedup": metric(3.0, True, "x")}
        assert check(baseline, current, max_regression=2.0) == []

    def test_fails_beyond_budget(self):
        baseline = {"latency": metric(10.0)}
        current = {"latency": metric(30.0)}
        failures = check(baseline, current, max_regression=2.0)
        assert len(failures) == 1
        assert "latency" in failures[0]

    def test_missing_metric_fails(self):
        failures = check({"latency": metric(10.0)}, {}, max_regression=2.0)
        assert failures == ["latency: missing from current run"]

    def test_extra_current_metric_does_not_fail(self):
        baseline = {"latency": metric(10.0)}
        current = {"latency": metric(10.0), "new_metric": metric(1.0)}
        assert check(baseline, current, max_regression=2.0) == []


class TestMain:
    def write(self, path, metrics):
        path.write_text(json.dumps({"schema": 1, "metrics": metrics}),
                        encoding="utf-8")
        return path

    def test_exit_codes(self, tmp_path):
        baseline = self.write(tmp_path / "baseline.json", {"m": metric(10.0)})
        good = self.write(tmp_path / "good.json", {"m": metric(12.0)})
        bad = self.write(tmp_path / "bad.json", {"m": metric(100.0)})
        args = ["--baseline", str(baseline), "--max-regression", "2.0"]
        assert main(["--current", str(good)] + args) == 0
        assert main(["--current", str(bad)] + args) == 1

    def test_empty_metrics_rejected(self, tmp_path):
        path = self.write(tmp_path / "empty.json", {})
        with pytest.raises(ValueError):
            load_metrics(path)


class TestSummary:
    def write(self, path, metrics):
        path.write_text(json.dumps({"schema": 1, "metrics": metrics}),
                        encoding="utf-8")
        return path

    def test_table_covers_all_metric_states(self):
        from benchmarks.perf_gate import summary_table
        baseline = {"lat": metric(10.0), "gone": metric(3.0),
                    "speed": metric(30.0, True, "x")}
        current = {"lat": metric(50.0), "speed": metric(29.0, True, "x"),
                   "fresh": metric(1.0)}
        table = summary_table(baseline, current, max_regression=2.0)
        assert "| lat | 10.000 ms | 50.000 ms | 5.00x | ❌ regressed |" in table
        assert "| gone | 3.000 ms | — | — | ❌ missing |" in table
        assert "| speed | 30.000 x | 29.000 x | 1.03x | ✅ ok |" in table
        assert "| fresh | — | 1.000 ms | — | 🆕 not gated |" in table

    def test_main_appends_summary_even_on_failure(self, tmp_path):
        baseline = self.write(tmp_path / "baseline.json", {"m": metric(10.0)})
        bad = self.write(tmp_path / "bad.json", {"m": metric(100.0)})
        summary = tmp_path / "summary.md"
        code = main(["--current", str(bad), "--baseline", str(baseline),
                     "--summary", str(summary)])
        assert code == 1
        text = summary.read_text(encoding="utf-8")
        assert "### Perf gate" in text
        assert "❌ regressed" in text

    def test_summary_defaults_to_github_step_summary(self, tmp_path, monkeypatch):
        baseline = self.write(tmp_path / "baseline.json", {"m": metric(10.0)})
        good = self.write(tmp_path / "good.json", {"m": metric(10.0)})
        summary = tmp_path / "step.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
        assert main(["--current", str(good), "--baseline", str(baseline)]) == 0
        assert "✅ ok" in summary.read_text(encoding="utf-8")


class TestUpdateBaseline:
    def write(self, path, payload):
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_refresh_replaces_metrics_and_keeps_comment(self, tmp_path):
        baseline = self.write(tmp_path / "baseline.json", {
            "schema": 1, "comment": "recorded on machine X",
            "metrics": {"m": metric(10.0)}})
        current = self.write(tmp_path / "current.json", {
            "schema": 1, "metrics": {"m": metric(4.0), "new": metric(1.0)}})
        assert main(["--current", str(current), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["comment"] == "recorded on machine X"
        assert payload["metrics"]["m"]["value"] == 4.0
        assert "new" in payload["metrics"]
        # The refreshed file must pass its own gate exactly.
        assert main(["--current", str(current), "--baseline", str(baseline)]) == 0

    def test_refresh_creates_a_missing_baseline(self, tmp_path):
        current = self.write(tmp_path / "current.json", {
            "schema": 1, "metrics": {"m": metric(4.0)}})
        baseline = tmp_path / "baselines" / "new.json"
        assert main(["--current", str(current), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        assert json.loads(baseline.read_text(encoding="utf-8"))["metrics"]["m"][
            "value"] == 4.0
