"""Unit tests for the emulator's program executor."""

import pytest

from repro.emulator.executor import ProgramExecutor
from repro.emulator.program import (
    CpuCompute,
    DeviceSync,
    EventRecord,
    KernelIntent,
    LaunchKernel,
    RankProgram,
    StreamSync,
    StreamWaitEvent,
    Streams,
    Threads,
)


def kernel(name, stream, duration, comm_key=None, collective=None):
    return KernelIntent(name=name, stream=stream, duration_us=duration, op_class="gemm",
                        comm_key=comm_key, collective=collective)


def launch(intent, thread=Threads.MAIN):
    return LaunchKernel(thread=thread, kernel=intent, op_duration_us=1.0, launch_duration_us=1.0)


def run(programs):
    return ProgramExecutor().execute(programs, start_time=0.0)


def kernels_of(tasks):
    return [t for t in tasks if t.kind == "kernel"]


class TestSequentialSemantics:
    def test_cpu_instructions_execute_in_order(self):
        program = RankProgram(rank=0, stage=0, instructions=[
            CpuCompute(thread=Threads.MAIN, name="a", duration_us=10.0),
            CpuCompute(thread=Threads.MAIN, name="b", duration_us=5.0),
        ])
        tasks = run({0: program})[0]
        assert tasks[1].start == pytest.approx(tasks[0].end)

    def test_kernel_starts_after_launch(self):
        intent = kernel("k", Streams.COMPUTE, 100.0)
        program = RankProgram(rank=0, stage=0, instructions=[launch(intent)])
        tasks = run({0: program})[0]
        launch_task, kernel_task = tasks
        assert kernel_task.start >= launch_task.end

    def test_same_stream_kernels_serialize(self):
        k1, k2 = kernel("k1", Streams.COMPUTE, 100.0), kernel("k2", Streams.COMPUTE, 50.0)
        program = RankProgram(rank=0, stage=0, instructions=[launch(k1), launch(k2)])
        tasks = kernels_of(run({0: program})[0])
        assert tasks[1].start >= tasks[0].end

    def test_different_streams_overlap(self):
        k1, k2 = kernel("k1", Streams.COMPUTE, 1000.0), kernel("k2", Streams.TP_COMM, 1000.0)
        program = RankProgram(rank=0, stage=0, instructions=[launch(k1), launch(k2)])
        tasks = kernels_of(run({0: program})[0])
        assert tasks[1].start < tasks[0].end


class TestEventSynchronisation:
    def test_stream_wait_event_defers_next_kernel(self):
        producer = kernel("producer", Streams.COMPUTE, 500.0)
        consumer = kernel("consumer", Streams.TP_COMM, 10.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            launch(producer),
            EventRecord(thread=Threads.MAIN, stream=Streams.COMPUTE, event_id=1),
            StreamWaitEvent(thread=Threads.MAIN, stream=Streams.TP_COMM, event_id=1),
            launch(consumer),
        ])
        tasks = kernels_of(run({0: program})[0])
        assert tasks[1].start >= tasks[0].end

    def test_without_wait_the_kernels_overlap(self):
        producer = kernel("producer", Streams.COMPUTE, 500.0)
        consumer = kernel("consumer", Streams.TP_COMM, 10.0)
        program = RankProgram(rank=0, stage=0, instructions=[launch(producer), launch(consumer)])
        tasks = kernels_of(run({0: program})[0])
        assert tasks[1].start < tasks[0].end

    def test_wait_for_unrecorded_event_is_noop(self):
        consumer = kernel("consumer", Streams.TP_COMM, 10.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            StreamWaitEvent(thread=Threads.MAIN, stream=Streams.TP_COMM, event_id=99),
            launch(consumer),
        ])
        tasks = run({0: program})[0]
        assert kernels_of(tasks)[0].start < 20.0


class TestBlockingSyncs:
    def test_stream_sync_blocks_cpu(self):
        slow = kernel("slow", Streams.COMPUTE, 1000.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            launch(slow),
            StreamSync(thread=Threads.MAIN, stream=Streams.COMPUTE),
            CpuCompute(thread=Threads.MAIN, name="after", duration_us=1.0),
        ])
        tasks = run({0: program})[0]
        after = [t for t in tasks if t.name == "after"][0]
        slow_kernel = kernels_of(tasks)[0]
        assert after.start >= slow_kernel.end

    def test_stream_sync_ignores_other_streams(self):
        slow = kernel("slow", Streams.COMPUTE, 1000.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            launch(slow),
            StreamSync(thread=Threads.MAIN, stream=Streams.DP_COMM),
            CpuCompute(thread=Threads.MAIN, name="after", duration_us=1.0),
        ])
        tasks = run({0: program})[0]
        after = [t for t in tasks if t.name == "after"][0]
        assert after.start < 100.0

    def test_device_sync_waits_for_all_streams(self):
        k1 = kernel("k1", Streams.COMPUTE, 500.0)
        k2 = kernel("k2", Streams.TP_COMM, 900.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            launch(k1), launch(k2), DeviceSync(thread=Threads.MAIN),
            CpuCompute(thread=Threads.MAIN, name="after", duration_us=1.0),
        ])
        tasks = run({0: program})[0]
        after = [t for t in tasks if t.name == "after"][0]
        assert after.start >= max(t.end for t in kernels_of(tasks))

    def test_sync_records_called_at(self):
        slow = kernel("slow", Streams.COMPUTE, 1000.0)
        program = RankProgram(rank=0, stage=0, instructions=[
            launch(slow), StreamSync(thread=Threads.MAIN, stream=Streams.COMPUTE)])
        tasks = run({0: program})[0]
        sync = [t for t in tasks if t.name == "cudaStreamSynchronize"][0]
        assert sync.called_at is not None
        assert sync.called_at < sync.start


class TestCollectiveAlignment:
    def _pair_programs(self, recv_delay_us: float):
        send = kernel("send", Streams.PP_SEND_FWD, 50.0, comm_key="act:1:0", collective="send")
        recv = kernel("recv", Streams.PP_RECV_FWD, 50.0, comm_key="act:1:0", collective="recv")
        sender = RankProgram(rank=0, stage=0, instructions=[launch(send)])
        receiver = RankProgram(rank=1, stage=1, instructions=[
            CpuCompute(thread=Threads.MAIN, name="delay", duration_us=recv_delay_us),
            launch(recv),
        ])
        return {0: sender, 1: receiver}

    def test_pair_starts_together_and_shares_duration(self):
        results = run(self._pair_programs(recv_delay_us=400.0))
        send_task = kernels_of(results[0])[0]
        recv_task = kernels_of(results[1])[0]
        assert send_task.start == pytest.approx(recv_task.start)
        assert send_task.duration == pytest.approx(recv_task.duration)

    def test_late_receiver_delays_sender(self):
        results = run(self._pair_programs(recv_delay_us=800.0))
        send_task = kernels_of(results[0])[0]
        assert send_task.start >= 800.0

    def test_unknown_instruction_type_raises(self):
        class Weird:
            thread = Threads.MAIN

        program = RankProgram(rank=0, stage=0, instructions=[Weird()])
        with pytest.raises(TypeError):
            run({0: program})
