"""End-to-end tests for continuous-batching serving realism.

The tentpole path: emulate a serving *stream* (seeded Poisson arrivals,
FCFS continuous batching) → the trace carries a :class:`StreamPlan` →
replay/predict score it with per-request :class:`ServingMetrics` (TTFT,
latency percentiles, tokens/s, SLO goodput) → what-ifs and sweeps thread
those metrics through, and the timeline export grows per-request tracks.

Scale note: the stream model is widened (``d_model=4096``) so prefill
kernels clear the launch overhead — at the default tiny scale the episode
is launch-bound and serving knobs cannot move the critical path.
"""

from __future__ import annotations

import pytest

from repro import ServingMetrics, Study
from repro.api import PredictError
from repro.core.manipulation.serving import REFUSE_STREAM_BATCH
from repro.core.serving_metrics import (
    RequestMetrics,
    compute_serving_metrics,
    metrics_from_task_times,
    stream_plan_of,
)
from repro.observability import (
    serving_request_events,
    timeline_json,
    tracing,
    validate_chrome_trace,
)
from repro.workload.arrivals import STREAM_METADATA_KEY, StreamPlan, parse_arrival
from repro.workload.inference import InferenceConfig
from tests.conftest import tiny_model

ARRIVAL = "poisson:rate=600,n=6,seed=3"
STREAM_INFERENCE = InferenceConfig(batch_size=4, prompt_length=512,
                                   decode_length=2,
                                   arrival=parse_arrival(ARRIVAL))


def stream_model():
    return tiny_model(n_layers=2, d_model=4096, name="tiny-stream")


@pytest.fixture(scope="module")
def stream_study():
    return Study.from_emulation(stream_model(), "2x1x1",
                                inference=STREAM_INFERENCE,
                                iterations=1, seed=7)


class TestStreamPlanInTrace:
    def test_plan_travels_in_graph_metadata(self, stream_study):
        plan = stream_study.stream_plan
        assert isinstance(plan, StreamPlan)
        assert plan.arrival == STREAM_INFERENCE.arrival
        assert stream_study.base_graph.metadata[STREAM_METADATA_KEY] == plan.to_json()

    def test_plan_survives_trace_save_and_load(self, stream_study, tmp_path):
        from repro.trace.kineto import TraceBundle

        stream_study.trace.save(tmp_path / "stream")
        reopened = Study.from_trace(TraceBundle.load(tmp_path / "stream"))
        assert reopened.stream_plan == stream_study.stream_plan

    def test_admission_respects_the_batch_cap(self, stream_study):
        plan = stream_study.stream_plan
        cap = STREAM_INFERENCE.batch_size
        assert all(len(chunk) <= cap for chunk in plan.chunk_requests)
        assert all(len(step) <= cap for step in plan.step_requests)
        assert plan.max_step_batch <= cap

    def test_step_batches_vary_over_the_episode(self, stream_study):
        # The point of continuous batching: the decode batch grows and
        # shrinks with arrivals/completions instead of staying fixed.
        sizes = {len(step) for step in stream_study.stream_plan.step_requests}
        assert len(sizes) > 1

    def test_every_request_decodes_its_full_horizon(self, stream_study):
        plan = stream_study.stream_plan
        for schedule in plan.requests:
            assert schedule.num_decode_steps == STREAM_INFERENCE.decode_length
            assert schedule.request in plan.chunk_requests[schedule.prefill_chunk]
            for step in range(schedule.first_step, schedule.last_step + 1):
                assert schedule.request in plan.step_requests[step]

    def test_same_seed_reproduces_the_episode(self, stream_study):
        again = Study.from_emulation(stream_model(), "2x1x1",
                                     inference=STREAM_INFERENCE,
                                     iterations=1, seed=7)
        assert again.stream_plan == stream_study.stream_plan
        assert again.base_time_us == stream_study.base_time_us


class TestServingMetricsMath:
    """Hand-computed two-request episode: every aggregate checked by hand."""

    @pytest.fixture()
    def metrics(self):
        return ServingMetrics(
            requests=(
                RequestMetrics(request=0, arrival_us=0.0, first_token_us=2000.0,
                               completion_us=4000.0, tokens=3),
                RequestMetrics(request=1, arrival_us=1000.0, first_token_us=5000.0,
                               completion_us=8000.0, tokens=3),
            ),
            deadline_ms=6.0)

    def test_per_request_derivations(self, metrics):
        first, second = metrics.requests
        assert first.ttft_ms == 2.0 and second.ttft_ms == 4.0
        assert first.latency_ms == 4.0 and second.latency_ms == 7.0

    def test_percentiles_interpolate_linearly(self, metrics):
        assert metrics.ttft_p50_ms == pytest.approx(3.0)
        assert metrics.ttft_p99_ms == pytest.approx(2.0 + 2.0 * 0.99)
        assert metrics.latency_p50_ms == pytest.approx(5.5)
        assert metrics.latency_p99_ms == pytest.approx(4.0 + 3.0 * 0.99)

    def test_throughput_and_goodput(self, metrics):
        # Episode: first arrival (0) to last completion (8000 µs) = 8 ms.
        assert metrics.episode_us == 8000.0
        assert metrics.tokens_per_s == pytest.approx(6 / 0.008)
        assert metrics.request_throughput_rps == pytest.approx(250.0)
        # Only request 0 (4 ms) meets the 6 ms deadline.
        assert metrics.slo_attainment == 0.5
        assert metrics.goodput_rps == pytest.approx(125.0)

    def test_json_payload_matches_properties(self, metrics):
        payload = metrics.to_json()
        assert payload["num_requests"] == 2
        assert payload["goodput_rps"] == pytest.approx(metrics.goodput_rps)
        assert payload["deadline_ms"] == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServingMetrics(requests=())
        with pytest.raises(ValueError):
            ServingMetrics(requests=(RequestMetrics(0, 0.0, 1.0, 2.0, 1),),
                           deadline_ms=0.0)


class TestBaseServingMetrics:
    def test_episode_summary(self, stream_study):
        metrics = stream_study.base_serving_metrics()
        assert metrics.num_requests == 6
        # prefill token + one per decode step, per request.
        assert metrics.tokens_generated == 6 * (STREAM_INFERENCE.decode_length + 1)
        assert all(r.ttft_us > 0 for r in metrics.requests)
        assert all(r.latency_us >= r.ttft_us for r in metrics.requests)
        assert metrics.goodput_rps == pytest.approx(
            metrics.request_throughput_rps * metrics.slo_attainment)

    def test_deadline_changes_attainment_not_timings(self, stream_study):
        loose = stream_study.base_serving_metrics()
        tight = stream_study.base_serving_metrics(deadline_ms=0.001)
        assert tight.requests == loose.requests
        assert tight.slo_attainment == 0.0
        assert tight.goodput_rps == 0.0

    def test_dense_array_path_is_bit_identical(self, stream_study):
        # The sweep/what-if path scores (tasks, starts, durations) arrays;
        # it must agree exactly with scoring the SimulationResult.
        replay = stream_study.replay()
        plan = stream_study.stream_plan
        from_sim = compute_serving_metrics(replay.simulation, plan)
        tasks = replay.compiled.tasks
        run = replay.base_run or replay.session().run()
        from_arrays = metrics_from_task_times(
            tasks, run.starts, run.durations, plan)
        assert from_arrays == from_sim

    def test_training_study_has_no_stream(self):
        study = Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=5)
        assert study.stream_plan is None
        assert study.base_serving_metrics() is None
        assert stream_plan_of(study.base_graph.metadata) is None


class TestStreamPredictions:
    def test_serving_retiming_rescales_the_stream(self, stream_study):
        base = stream_study.base_serving_metrics()
        prediction = stream_study.predict("serving:prompt=1024")
        assert prediction.is_stream
        metrics = prediction.serving_metrics()
        assert metrics is not None
        # Longer prompts: slower prefill, so strictly worse TTFT.
        assert metrics.ttft_p99_ms > base.ttft_p99_ms
        assert metrics.latency_p99_ms != base.latency_p99_ms

    def test_tp_retiming_differs_from_base(self, stream_study):
        metrics = stream_study.predict("serving:tp=1").serving_metrics()
        base = stream_study.base_serving_metrics()
        assert metrics.latency_p99_ms != base.latency_p99_ms

    def test_batch_cap_change_is_refused_with_code(self, stream_study):
        # The cap drives the admission schedule: re-timing cannot hold the
        # program fixed, so the manipulation refuses with a typed code.
        with pytest.raises(PredictError) as excinfo:
            stream_study.predict("serving:batch=2")
        assert excinfo.value.code == REFUSE_STREAM_BATCH
        assert "re-emulate" in str(excinfo.value)

    def test_training_targets_refused_on_stream_base(self, stream_study):
        with pytest.raises(PredictError, match="serving episode"):
            stream_study.predict("2x1x2")

    def test_non_stream_prediction_has_no_serving_metrics(self):
        study = Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=5)
        prediction = study.predict("2x1x2")
        assert not prediction.is_stream
        assert prediction.serving_metrics() is None


class TestStreamWhatIf:
    def test_whatif_results_carry_serving_metrics(self, stream_study):
        fast, slow = (stream_study.whatif()
                      .kernel_class("gemm", 2.0)
                      .kernel_class("gemm", 0.5)
                      .run())
        assert fast.serving is not None and slow.serving is not None
        assert fast.serving.latency_p99_ms <= slow.serving.latency_p99_ms
        assert fast.serving.goodput_rps >= slow.serving.goodput_rps

    def test_whatif_serving_matches_direct_scoring(self, stream_study):
        # An everything-at-1.0 scenario reproduces the base episode.
        result = stream_study.whatif().kernel_class("gemm", 1.0).run()[0]
        assert result.serving == stream_study.base_serving_metrics()

    def test_training_whatif_has_no_serving(self):
        study = Study.from_emulation(tiny_model(), "2x1x1", iterations=1, seed=5)
        result = study.whatif().kernel_class("gemm", 2.0).run()[0]
        assert result.serving is None


class TestStreamSweep:
    def test_sweep_threads_serving_metrics_and_ranks_by_goodput(self, stream_study):
        sweep = stream_study.sweep(serving=["prompt=1024"], whatif=["gemm:2"],
                                   slo_ms=8.0)
        assert all(r.serving is not None for r in sweep.results)
        assert all(r.serving["deadline_ms"] == 8.0 for r in sweep.results)
        from repro.sweep import rank_results

        ranked = rank_results(sweep.results)
        goodputs = [r.goodput_rps for r in ranked]
        assert goodputs == sorted(goodputs, reverse=True)

    def test_serving_report_table(self, stream_study):
        from repro.sweep import format_ranked_table

        sweep = stream_study.sweep(serving=["prompt=1024"], slo_ms=8.0)
        table = format_ranked_table(sweep.results)
        assert "goodput_rps" in table and "ttft_p99_ms" in table


class TestServingObservability:
    def test_metrics_recorded_into_active_profile(self, stream_study):
        with tracing.profile(label="serving") as prof:
            stream_study.base_serving_metrics()
        metrics = prof.report()["metrics"]
        assert metrics["histograms"]["serving.ttft_ms"]["count"] == 6
        assert metrics["histograms"]["serving.latency_ms"]["count"] == 6
        assert 0.0 <= metrics["gauges"]["serving.slo_attainment"] <= 1.0
        assert metrics["gauges"]["serving.goodput_rps"] > 0


class TestRequestTimelineTracks:
    def test_request_events_are_schema_valid(self, stream_study):
        metrics = stream_study.base_serving_metrics()
        payload = timeline_json([("replayed", stream_study.replay())],
                                serving=[("replayed", metrics)])
        events = validate_chrome_trace(payload)
        request_events = [e for e in events if e.get("cat") == "serving-request"]
        # Two complete events per request: queue+prefill and decode.
        assert len(request_events) == 2 * metrics.num_requests
        assert payload["otherData"]["request_tracks"] == ["replayed"]

    def test_track_spans_match_the_request_lifecycle(self, stream_study):
        metrics = stream_study.base_serving_metrics()
        events = serving_request_events(metrics, label="base", pid_base=0)
        first = metrics.requests[0]
        ttft_span = next(e for e in events if e["name"] == "queue+prefill"
                         and e["tid"] == first.request)
        decode_span = next(e for e in events if e["name"] == "decode"
                           and e["tid"] == first.request)
        assert ttft_span["ts"] == first.arrival_us
        assert ttft_span["dur"] == pytest.approx(first.ttft_us)
        assert decode_span["ts"] + decode_span["dur"] == \
            pytest.approx(first.completion_us)
