"""Unit tests for layer partitioning and the 1F1B schedule."""

import pytest

from repro.workload.pipeline import (
    PipelineAction,
    one_f_one_b_schedule,
    pipeline_bubble_fraction,
    stage_layers,
    stage_of_layer,
)


class TestStageLayers:
    def test_even_split(self):
        assert stage_layers(48, 4, 0) == list(range(0, 12))
        assert stage_layers(48, 4, 3) == list(range(36, 48))

    def test_uneven_split_gives_extra_to_early_stages(self):
        sizes = [len(stage_layers(10, 4, s)) for s in range(4)]
        assert sizes == [3, 3, 2, 2]
        assert sum(sizes) == 10

    def test_every_layer_assigned_exactly_once(self):
        layers = [layer for stage in range(6) for layer in stage_layers(47, 6, stage)]
        assert sorted(layers) == list(range(47))

    def test_stage_of_layer_consistent_with_stage_layers(self):
        for layer in range(24):
            stage = stage_of_layer(24, 4, layer)
            assert layer in stage_layers(24, 4, stage)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            stage_layers(4, 8, 0)
        with pytest.raises(ValueError):
            stage_layers(8, 4, 4)
        with pytest.raises(ValueError):
            stage_of_layer(8, 2, 8)


class TestOneFOneB:
    def test_every_microbatch_forward_and_backward_once(self):
        for stage in range(4):
            schedule = one_f_one_b_schedule(8, 4, stage)
            forwards = [a.microbatch for a in schedule if a.kind == "F"]
            backwards = [a.microbatch for a in schedule if a.kind == "B"]
            assert sorted(forwards) == list(range(8))
            assert sorted(backwards) == list(range(8))

    def test_backward_never_precedes_its_forward(self):
        for stage in range(4):
            schedule = one_f_one_b_schedule(6, 4, stage)
            seen_forward = set()
            for action in schedule:
                if action.kind == "F":
                    seen_forward.add(action.microbatch)
                else:
                    assert action.microbatch in seen_forward

    def test_last_stage_alternates_strictly(self):
        schedule = one_f_one_b_schedule(4, 4, 3)
        kinds = [action.kind for action in schedule]
        assert kinds == ["F", "B"] * 4

    def test_first_stage_warmup_depth(self):
        schedule = one_f_one_b_schedule(8, 4, 0)
        kinds = [action.kind for action in schedule]
        assert kinds[:3] == ["F", "F", "F"]
        assert kinds[-3:] == ["B", "B", "B"]

    def test_warmup_capped_by_microbatch_count(self):
        schedule = one_f_one_b_schedule(2, 8, 0)
        assert len(schedule) == 4
        assert [a.kind for a in schedule if a.kind == "F"] == ["F", "F"]

    def test_single_stage_schedule(self):
        schedule = one_f_one_b_schedule(3, 1, 0)
        assert [(-1 if a.kind == "B" else 1) * (a.microbatch + 1) for a in schedule] == \
            [1, -1, 2, -2, 3, -3]

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            one_f_one_b_schedule(0, 2, 0)
        with pytest.raises(ValueError):
            one_f_one_b_schedule(4, 2, 2)
        with pytest.raises(ValueError):
            PipelineAction("X", 0)
        with pytest.raises(ValueError):
            PipelineAction("F", -1)


class TestBubbleFraction:
    def test_no_bubble_without_pipeline(self):
        assert pipeline_bubble_fraction(8, 1) == 0.0

    def test_bubble_grows_with_stages(self):
        assert pipeline_bubble_fraction(8, 16) > pipeline_bubble_fraction(8, 4)

    def test_bubble_shrinks_with_microbatches(self):
        assert pipeline_bubble_fraction(64, 8) < pipeline_bubble_fraction(8, 8)

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError):
            pipeline_bubble_fraction(0, 4)
