"""Unit tests for the trace event schema."""

import pytest

from repro.trace.events import (
    Category,
    CudaRuntimeName,
    TraceEvent,
    is_collective_kernel,
    is_kernel_event,
    is_runtime_event,
    is_sync_runtime,
)


def make_event(**overrides):
    defaults = dict(name="aten::mm", cat=Category.CPU_OP, ts=100.0, dur=5.0, pid=0, tid=1)
    defaults.update(overrides)
    return TraceEvent(**defaults)


class TestTraceEvent:
    def test_end_is_start_plus_duration(self):
        event = make_event(ts=10.0, dur=2.5)
        assert event.end == pytest.approx(12.5)

    def test_correlation_parsed_from_args(self):
        event = make_event(args={"correlation": "17"})
        assert event.correlation == 17

    def test_correlation_missing_is_none(self):
        assert make_event().correlation is None

    def test_stream_from_args_takes_priority(self):
        event = make_event(cat=Category.KERNEL, tid=7, args={"stream": 20})
        assert event.stream == 20

    def test_stream_falls_back_to_tid_for_gpu_events(self):
        event = make_event(cat=Category.KERNEL, tid=7)
        assert event.stream == 7

    def test_stream_is_none_for_cpu_events_without_args(self):
        assert make_event().stream is None

    def test_cpu_gpu_classification(self):
        assert make_event().is_cpu() and not make_event().is_gpu()
        kernel = make_event(cat=Category.KERNEL)
        assert kernel.is_gpu() and not kernel.is_cpu()

    def test_json_roundtrip_preserves_fields(self):
        event = make_event(args={"correlation": 3, "stream": 7}, cat=Category.KERNEL)
        restored = TraceEvent.from_json(event.to_json())
        assert restored == event

    def test_from_json_defaults_for_missing_fields(self):
        restored = TraceEvent.from_json({"name": "x", "ts": 1.0})
        assert restored.dur == 0.0
        assert restored.pid == 0
        assert restored.ph == "X"


class TestEventPredicates:
    def test_is_kernel_event_for_gpu_categories(self):
        for cat in (Category.KERNEL, Category.GPU_MEMCPY, Category.GPU_MEMSET):
            assert is_kernel_event(make_event(cat=cat))
        assert not is_kernel_event(make_event())

    def test_is_runtime_event(self):
        event = make_event(cat=Category.CUDA_RUNTIME, name=CudaRuntimeName.LAUNCH_KERNEL)
        assert is_runtime_event(event)
        assert not is_runtime_event(make_event())

    def test_is_sync_runtime_only_for_blocking_calls(self):
        sync = make_event(cat=Category.CUDA_RUNTIME, name=CudaRuntimeName.DEVICE_SYNCHRONIZE)
        launch = make_event(cat=Category.CUDA_RUNTIME, name=CudaRuntimeName.LAUNCH_KERNEL)
        assert is_sync_runtime(sync)
        assert not is_sync_runtime(launch)

    def test_collective_kernel_by_args(self):
        event = make_event(cat=Category.KERNEL, name="customKernel",
                           args={"collective": "all_reduce"})
        assert is_collective_kernel(event)

    def test_collective_kernel_by_name(self):
        event = make_event(cat=Category.KERNEL, name="ncclDevKernel_AllReduce_Sum_bf16")
        assert is_collective_kernel(event)

    def test_compute_kernel_not_collective(self):
        event = make_event(cat=Category.KERNEL, name="sm90_xmma_gemm_bf16")
        assert not is_collective_kernel(event)

    def test_cpu_event_never_collective(self):
        event = make_event(args={"collective": "all_reduce"})
        assert not is_collective_kernel(event)
