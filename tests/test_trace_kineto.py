"""Unit tests for trace containers and serialisation."""

import pytest

from repro.trace.events import Category, TraceEvent
from repro.trace.kineto import DistributedInfo, KinetoTrace, TraceBundle


def _event(name, cat, ts, dur, tid=1, pid=0, args=None):
    return TraceEvent(name=name, cat=cat, ts=ts, dur=dur, pid=pid, tid=tid, args=args or {})


@pytest.fixture
def simple_trace():
    events = [
        _event("ProfilerStep#3", Category.USER_ANNOTATION, 0.0, 100.0, tid=0),
        _event("aten::mm", Category.CPU_OP, 5.0, 10.0, tid=1),
        _event("cudaLaunchKernel", Category.CUDA_RUNTIME, 10.0, 4.0, tid=1,
               args={"correlation": 1}),
        _event("gemm_kernel", Category.KERNEL, 20.0, 30.0, tid=7,
               args={"correlation": 1, "stream": 7}),
        _event("nccl_all_reduce", Category.KERNEL, 55.0, 20.0, tid=20,
               args={"stream": 20, "collective": "all_reduce"}),
    ]
    return KinetoTrace(rank=3, events=events,
                       distributed=DistributedInfo(rank=3, world_size=8, tensor_parallel=2,
                                                   pipeline_parallel=2, data_parallel=2))


class TestKinetoTrace:
    def test_events_sorted_by_timestamp(self):
        events = [
            _event("late", Category.CPU_OP, 50.0, 1.0),
            _event("early", Category.CPU_OP, 1.0, 1.0),
        ]
        trace = KinetoTrace(rank=0, events=events)
        assert [e.name for e in trace] == ["early", "late"]

    def test_category_selectors(self, simple_trace):
        assert len(simple_trace.cpu_ops()) == 1
        assert len(simple_trace.runtime_events()) == 1
        assert len(simple_trace.kernels()) == 2
        assert len(simple_trace.annotations()) == 1

    def test_threads_and_streams(self, simple_trace):
        assert simple_trace.threads() == [0, 1]
        assert simple_trace.streams() == [7, 20]

    def test_span_and_bounds(self, simple_trace):
        assert simple_trace.start_time() == 0.0
        assert simple_trace.end_time() == 100.0
        assert simple_trace.span() == 100.0

    def test_empty_trace_bounds(self):
        trace = KinetoTrace(rank=0, events=[])
        assert trace.span() == 0.0
        assert len(trace) == 0

    def test_profiler_steps_sorted_by_number(self):
        events = [
            _event("ProfilerStep#10", Category.USER_ANNOTATION, 200.0, 10.0, tid=0),
            _event("ProfilerStep#2", Category.USER_ANNOTATION, 0.0, 10.0, tid=0),
        ]
        trace = KinetoTrace(rank=0, events=events)
        assert [e.name for e in trace.profiler_steps()] == ["ProfilerStep#2", "ProfilerStep#10"]

    def test_iteration_window_uses_first_step(self, simple_trace):
        assert simple_trace.iteration_window() == (0.0, 100.0)

    def test_iteration_window_specific_step(self, simple_trace):
        assert simple_trace.iteration_window(step=3) == (0.0, 100.0)

    def test_iteration_window_unknown_step_raises(self, simple_trace):
        with pytest.raises(KeyError):
            simple_trace.iteration_window(step=99)

    def test_iteration_window_without_steps_falls_back_to_span(self):
        trace = KinetoTrace(rank=0, events=[_event("op", Category.CPU_OP, 5.0, 10.0)])
        assert trace.iteration_window() == (5.0, 15.0)

    def test_slice_keeps_only_contained_events(self, simple_trace):
        sliced = simple_trace.slice(0.0, 30.0)
        assert {e.name for e in sliced} == {"aten::mm", "cudaLaunchKernel"}

    def test_json_roundtrip(self, simple_trace):
        restored = KinetoTrace.from_json(simple_trace.to_json())
        assert restored.rank == simple_trace.rank
        assert len(restored) == len(simple_trace)
        assert restored.distributed == simple_trace.distributed

    def test_save_and_load_plain_json(self, simple_trace, tmp_path):
        path = tmp_path / "trace.json"
        simple_trace.save(path)
        assert KinetoTrace.load(path).span() == simple_trace.span()

    def test_save_and_load_gzip(self, simple_trace, tmp_path):
        path = tmp_path / "trace.json.gz"
        simple_trace.save(path)
        assert len(KinetoTrace.load(path)) == len(simple_trace)


class TestDistributedInfo:
    def test_json_roundtrip(self):
        info = DistributedInfo(rank=5, world_size=64, tensor_parallel=4,
                               pipeline_parallel=4, data_parallel=4)
        assert DistributedInfo.from_json(info.to_json()) == info


class TestTraceBundle:
    def test_add_and_ranks(self, simple_trace):
        bundle = TraceBundle()
        bundle.add(simple_trace)
        bundle.add(KinetoTrace(rank=0, events=[]))
        assert bundle.ranks() == [0, 3]
        assert bundle[3] is simple_trace

    def test_iteration_time_spans_all_ranks(self):
        bundle = TraceBundle()
        bundle.add(KinetoTrace(rank=0, events=[
            _event("ProfilerStep#0", Category.USER_ANNOTATION, 0.0, 100.0, tid=0)]))
        bundle.add(KinetoTrace(rank=1, events=[
            _event("ProfilerStep#0", Category.USER_ANNOTATION, 20.0, 110.0, tid=0)]))
        assert bundle.iteration_time() == pytest.approx(130.0)

    def test_iteration_time_empty_bundle(self):
        assert TraceBundle().iteration_time() == 0.0

    def test_save_and_load_directory(self, simple_trace, tmp_path):
        bundle = TraceBundle(metadata={"model": "tiny"})
        bundle.add(simple_trace)
        bundle.save(tmp_path / "bundle")
        restored = TraceBundle.load(tmp_path / "bundle")
        assert restored.ranks() == [3]
        assert restored.metadata["model"] == "tiny"

    def test_events_iterates_all_ranks(self, simple_trace):
        bundle = TraceBundle()
        bundle.add(simple_trace)
        assert sum(1 for _ in bundle.events()) == len(simple_trace)
