"""Shared fixtures.

The unit and integration tests run against a deliberately small transformer
(a few layers, short sequences) so that the full suite stays fast; the
paper-scale models are exercised by the benchmark harness.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.core.graph_builder import GraphBuilder
from repro.core.replay import replay
from repro.emulator.api import ClusterEmulator, emulate
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import ModelConfig
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


GOLDENS_DIR = Path(__file__).parent / "goldens"

#: Hypothesis example-budget multipliers per profile.  Property tests pass
#: their per-test budget through :func:`hyp_max_examples`, so the nightly
#: workflow (``REPRO_HYPOTHESIS_PROFILE=nightly``) runs every strategy
#: several times harder without touching the fast default runs.
_HYPOTHESIS_PROFILES = {"ci": 1, "nightly": 5}


def hyp_max_examples(n: int) -> int:
    """``max_examples`` for one property test under the active profile."""
    profile = os.environ.get("REPRO_HYPOTHESIS_PROFILE", "ci")
    return n * _HYPOTHESIS_PROFILES.get(profile, 1)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the JSON snapshots under tests/goldens/ instead of "
             "comparing against them")


@pytest.fixture
def golden_check(request: pytest.FixtureRequest):
    """Compare a JSON-able payload against its committed golden snapshot.

    ``golden_check(name, payload)`` asserts exact equality (floats round-
    trip through ``json.dumps``/``loads``, so the comparison is bit-exact)
    against ``tests/goldens/<name>.json``; run ``pytest --update-goldens``
    to (re)write the snapshots after an intentional change.
    """
    update = request.config.getoption("--update-goldens")

    def check(name: str, payload) -> None:
        path = GOLDENS_DIR / f"{name}.json"
        rendered = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if update:
            GOLDENS_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(rendered, encoding="utf-8")
            return
        assert path.exists(), (
            f"golden snapshot {path} is missing; run "
            f"pytest --update-goldens to create it")
        expected = json.loads(path.read_text(encoding="utf-8"))
        assert json.loads(rendered) == expected, (
            f"output diverged from the committed golden {path.name}; if the "
            f"change is intentional, rerun with --update-goldens and commit "
            f"the diff")

    return check


def tiny_model(n_layers: int = 4, d_model: int = 1024, name: str = "tiny-gpt") -> ModelConfig:
    """A small transformer used throughout the tests."""
    return ModelConfig(name=name, n_layers=n_layers, d_model=d_model, d_ff=4 * d_model,
                       n_heads=max(1, d_model // 128), d_head=128, vocab_size=8192,
                       seq_length=512)


@pytest.fixture(scope="session")
def small_model() -> ModelConfig:
    return tiny_model()


@pytest.fixture(scope="session")
def small_parallel() -> ParallelismConfig:
    return ParallelismConfig(tensor_parallel=2, pipeline_parallel=2, data_parallel=2)


@pytest.fixture(scope="session")
def small_training() -> TrainingConfig:
    return TrainingConfig(micro_batch_size=1, num_microbatches=2, sequence_length=512,
                          gradient_bucket_layers=2)


@pytest.fixture(scope="session")
def small_cluster(small_parallel) -> ClusterSpec:
    return ClusterSpec.for_world_size(small_parallel.world_size)


@pytest.fixture(scope="session")
def small_emulation(small_model, small_parallel, small_training):
    """Two emulated iterations of the tiny workload (profiled + measured)."""
    return emulate(small_model, small_parallel, small_training, iterations=2, seed=42)


@pytest.fixture(scope="session")
def profiled_bundle(small_emulation):
    return small_emulation.profiled


@pytest.fixture(scope="session")
def measured_bundle(small_emulation):
    return small_emulation.measured


@pytest.fixture(scope="session")
def small_graph(profiled_bundle):
    """The Lumos execution graph of the tiny profiled trace."""
    return GraphBuilder().build(profiled_bundle)


@pytest.fixture(scope="session")
def small_replay(profiled_bundle):
    """Lumos replay of the tiny profiled trace."""
    return replay(profiled_bundle)


@pytest.fixture(scope="session")
def small_emulator(small_model, small_parallel, small_training):
    return ClusterEmulator(small_model, small_parallel, small_training, seed=42)
