"""Tests for chrome-trace / Perfetto export of simulated timelines.

The exports must be loadable by the viewers, so every payload produced
here goes through :func:`validate_chrome_trace` (the same schema check CI
smoke runs), and the layout contracts are asserted directly: one process
block per section, pid = block + rank, GPU tracks remapped past the CPU
thread ids, and ``process_name``/``thread_name`` metadata on every track.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Study
from repro.observability import (
    coerce_bundle,
    export_timeline,
    pipeline_profile_json,
    profile,
    timeline_json,
    trace_span,
    validate_chrome_trace,
)
from repro.observability.timeline import (
    _GPU_TID_BASE,
    _PID_STRIDE,
    iter_section_labels,
)
from repro.trace.events import Category
from repro.workload.inference import InferenceConfig
from repro.workload.training import TrainingConfig
from tests.conftest import tiny_model


@pytest.fixture(scope="module")
def training_study(profiled_bundle, small_model, small_parallel, small_training):
    return Study.from_trace(profiled_bundle, model=small_model,
                            parallelism=small_parallel, training=small_training)


@pytest.fixture(scope="module")
def serving_study():
    return Study.from_emulation(
        tiny_model(n_layers=2, d_model=256), "2x1x1",
        inference=InferenceConfig(batch_size=4, prompt_length=128,
                                  decode_length=2),
        iterations=1, seed=13)


def _events_by_phase(payload):
    complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    return complete, metadata


class TestTimelineJson:
    def test_training_sections_are_valid_chrome_trace(self, training_study):
        replay = training_study.replay()
        payload = timeline_json([("profiled", training_study.trace),
                                 ("replayed", replay)])
        validate_chrome_trace(payload)
        assert tuple(iter_section_labels(payload)) == ("profiled", "replayed")

    def test_serving_sections_are_valid_chrome_trace(self, serving_study):
        prediction = serving_study.predict(serving="batch=8")
        payload = timeline_json([("profiled", serving_study.trace),
                                 ("batch=8", prediction)])
        validate_chrome_trace(payload)
        complete, _ = _events_by_phase(payload)
        assert complete

    def test_sections_get_disjoint_pid_blocks(self, training_study):
        payload = timeline_json([("profiled", training_study.trace),
                                 ("replayed", training_study.replay())])
        complete, _ = _events_by_phase(payload)
        first = {e["pid"] for e in complete if e["pid"] < _PID_STRIDE}
        second = {e["pid"] for e in complete if e["pid"] >= _PID_STRIDE}
        ranks = {trace.rank for trace in training_study.trace}
        assert first == ranks
        assert second == {_PID_STRIDE + rank for rank in ranks}

    def test_gpu_tracks_are_remapped_past_cpu_threads(self, training_study):
        payload = timeline_json([("profiled", training_study.trace)])
        complete, _ = _events_by_phase(payload)
        gpu = [e for e in complete if e.get("cat") in Category.GPU_CATEGORIES]
        cpu = [e for e in complete if e.get("cat") not in Category.GPU_CATEGORIES]
        assert gpu and cpu
        assert all(e["tid"] >= _GPU_TID_BASE for e in gpu)
        assert all(e["tid"] < _GPU_TID_BASE for e in cpu)

    def test_every_rank_and_track_is_named(self, training_study):
        payload = timeline_json([("profiled", training_study.trace)])
        complete, metadata = _events_by_phase(payload)
        process_names = {e["pid"]: e["args"]["name"] for e in metadata
                         if e["name"] == "process_name"}
        thread_names = {(e["pid"], e["tid"]) for e in metadata
                        if e["name"] == "thread_name"}
        for event in complete:
            assert event["pid"] in process_names
            assert (event["pid"], event["tid"]) in thread_names
        assert process_names[0] == "profiled · rank 0"
        stream_names = {e["args"]["name"] for e in metadata
                        if e["name"] == "thread_name" and e["tid"] >= _GPU_TID_BASE}
        assert all(name.startswith("cuda stream") for name in stream_names)

    def test_empty_sections_are_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            timeline_json([])

    def test_unrenderable_source_is_a_type_error(self):
        with pytest.raises(TypeError, match="cannot render"):
            timeline_json([("bad", object())])


class TestCoercion:
    def test_coerces_every_timeline_shape(self, training_study):
        replay = training_study.replay()
        prediction = training_study.predict("2x1x2")
        session_run = replay.base_run
        for source in (training_study.trace,
                       next(iter(training_study.trace)),
                       replay,
                       replay.simulation,
                       prediction):
            bundle = coerce_bundle(source)
            assert sum(len(trace.events) for trace in bundle) > 0
        if session_run is not None:
            assert coerce_bundle(session_run) is not None


class TestExportAndProfileRendering:
    def test_export_timeline_writes_loadable_json(self, training_study, tmp_path):
        path = tmp_path / "timeline.json"
        payload = export_timeline([("profiled", training_study.trace)], path,
                                  metadata={"note": "unit"})
        loaded = json.loads(path.read_text(encoding="utf-8"))
        assert loaded == payload
        validate_chrome_trace(loaded)
        assert loaded["otherData"]["note"] == "unit"

    def test_pipeline_profile_renders_spans(self):
        with profile(label="render") as prof:
            with trace_span("outer"):
                with trace_span("inner", detail=1):
                    pass
        payload = pipeline_profile_json(prof)
        validate_chrome_trace(payload)
        complete, metadata = _events_by_phase(payload)
        assert [e["name"] for e in complete] == ["outer", "inner"]
        assert complete[1]["args"] == {"depth": 1, "detail": 1}
        assert any(e["name"] == "process_name" for e in metadata)

    def test_stage_spans_get_their_own_tracks(self):
        # The service-span convention: a `stage` attribute routes the
        # span to a named per-stage track so the queue-wait vs run split
        # is visible without any timeline special-casing.
        with profile(label="stages") as prof:
            with trace_span("service.run", stage="run", job="j1"):
                pass
            with trace_span("service.run", stage="run", job="j2"):
                pass
            with trace_span("service.admit", stage="admit"):
                pass
            with trace_span("plain"):
                pass
        payload = pipeline_profile_json(prof)
        validate_chrome_trace(payload)
        complete, metadata = _events_by_phase(payload)
        tids = {event["name"]: event["tid"] for event in complete}
        run_tids = {event["tid"] for event in complete
                    if event["name"] == "service.run"}
        assert len(run_tids) == 1
        assert run_tids != {tids["service.admit"]}
        assert tids["plain"] == 0
        track_names = {event["args"]["name"] for event in metadata
                       if event["name"] == "thread_name"}
        assert {"stage: run", "stage: admit", "pipeline spans"} <= track_names
        assert payload["otherData"]["stages"] == ["admit", "run"]


class TestChromeTraceValidation:
    def test_accepts_bare_event_lists(self):
        events = [{"name": "x", "ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}]
        assert validate_chrome_trace(events) == events

    @pytest.mark.parametrize("event,message", [
        ({"ph": "X", "ts": 0, "dur": 1, "pid": 0, "tid": 0}, "no event name"),
        ({"name": "x", "ph": "B", "ts": 0, "pid": 0, "tid": 0}, "unsupported phase"),
        ({"name": "x", "ph": "X", "dur": 1, "pid": 0, "tid": 0}, "numeric ts"),
        ({"name": "x", "ph": "X", "ts": 0, "dur": 1, "tid": 0}, "integer pid"),
        ({"name": "x", "ph": "M", "pid": 0, "tid": 0}, "without args"),
    ])
    def test_rejects_malformed_events(self, event, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace([event])

    def test_rejects_non_list_payloads(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"displayTimeUnit": "ms"})
