"""Serving SLOs under load: arrival rate vs tail latency and goodput.

A fixed serving episode answers "how long does this batch take"; a
*stream* answers the operator's question — "at this request rate, what
fraction of users see their token within the SLO, and how many requests
per second actually count?"  This example emulates continuous-batching
streams at increasing Poisson arrival rates, reads the per-request SLO
metrics off each replay, and then uses one stream study to explore
deployment what-ifs through the unified target API.

Run with ``python examples/serving_slo.py``.
"""

from repro import InferenceConfig, PredictError, Study, parse_arrival


def stream_study(rate_per_s: float) -> Study:
    """One continuous-batching stream at the given Poisson arrival rate."""
    inference = InferenceConfig(
        batch_size=8, prompt_length=512, decode_length=32,
        arrival=parse_arrival(f"poisson:rate={rate_per_s:g},n=16,seed=3"))
    return Study.from_emulation("gpt3-15b", "4x1x1", inference=inference,
                                iterations=1, seed=7)


def main() -> None:
    slo_ms = 600.0

    # 1. Load sweep: the same 16 requests arriving faster and faster.
    #    Queueing pushes TTFT and tail latency up; once requests start
    #    missing the deadline, goodput decouples from raw throughput.
    print(f"arrival-rate sweep (16 requests, SLO {slo_ms:g} ms):")
    print(f"  {'arrival':24s} {'ttft p99':>10s} {'lat p99':>10s} "
          f"{'tokens/s':>9s} {'goodput':>12s}")
    studies = {}
    for rate in (100.0, 400.0, 1600.0):
        study = studies[rate] = stream_study(rate)
        metrics = study.base_serving_metrics(deadline_ms=slo_ms)
        print(f"  {study.stream_plan.arrival.label():24s} "
              f"{metrics.ttft_p99_ms:8.2f}ms {metrics.latency_p99_ms:8.2f}ms "
              f"{metrics.tokens_per_s:9.0f} {metrics.goodput_rps:6.1f} req/s "
              f"({metrics.slo_attainment:.0%} in SLO)")

    # 2. What-if against the hottest stream: one unified target string per
    #    deployment change, each a calibrated re-timing of the same trace.
    study = studies[1600.0]
    print(f"\npredictions at rate=1600 (SLO {slo_ms:g} ms):")
    for target in ("serving:prompt=1024", "serving:tp=2", "serving:tp=8"):
        prediction = study.predict(target)
        metrics = prediction.serving_metrics(deadline_ms=slo_ms)
        print(f"  {prediction.label:12s} latency p99 "
              f"{metrics.latency_p99_ms:8.2f} ms, goodput "
              f"{metrics.goodput_rps:6.1f} req/s "
              f"({metrics.slo_attainment:.0%} in SLO)")

    # The batch cap drives the admission schedule, so changing it on a
    # stream is a typed refusal — re-emulate with the new cap instead.
    try:
        study.predict("serving:batch=16")
    except PredictError as error:
        print(f"  rejected batch=16: {error}")

    # 3. Sweep: serving targets x decode what-ifs, ranked by goodput.
    print(f"\nsweeping the hottest stream (ranked by goodput):")
    result = study.sweep(serving=["prompt=1024", "tp=2", "tp=8"],
                         whatif=["decode_attention:2"], slo_ms=slo_ms)
    for row in result.ranked():
        print(f"  {row.label:36s} {row.serving['goodput_rps']:6.1f} req/s, "
              f"latency p99 {row.serving['latency_p99_ms']:8.2f} ms")


if __name__ == "__main__":
    main()
