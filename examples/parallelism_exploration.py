"""What-if exploration of parallelism strategies from a single trace.

This is the §3.4 use case the paper motivates: an engineer has one profiled
run of GPT-3 15B at TP=2, PP=2, DP=4 and wants to know how the iteration
time would change when scaling data parallelism and/or pipeline parallelism
— without deploying anything.  Lumos manipulates the execution graph of the
existing trace and predicts each candidate through simulation, and this
example also emulates the candidates directly to show the predictions are
trustworthy.

Run with ``python examples/parallelism_exploration.py``.
"""

from repro.analysis.reporting import format_table
from repro.core.breakdown import compute_breakdown
from repro.core.manipulation import scale_data_parallelism, scale_pipeline_parallelism
from repro.core.metrics import relative_error_percent
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import replay, simulate_graph
from repro.emulator.api import emulate
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

CANDIDATES = ["2x2x8", "2x2x16", "2x4x4", "2x8x4", "2x4x8"]


def main() -> None:
    model = gpt3_model("gpt3-15b")
    base_parallel = ParallelismConfig.parse("2x2x4")
    training = TrainingConfig(micro_batch_size=2, num_microbatches=4)

    print(f"profiling the base configuration {base_parallel.label()} ...")
    base = emulate(model, base_parallel, training, iterations=1, seed=5)
    base_replay = replay(base.profiled)
    perf_model = KernelPerfModel.calibrate(
        base_replay.graph, ClusterSpec.for_world_size(base_parallel.world_size))
    print(f"  base iteration time (replayed): {base_replay.iteration_time_ms:.1f} ms")

    rows = []
    for label in CANDIDATES:
        target = ParallelismConfig.parse(label)
        if target.pp == base_parallel.pp:
            graph = scale_data_parallelism(base_replay.graph, base_parallel, target.dp,
                                           perf_model)
        else:
            graph = scale_pipeline_parallelism(base_replay.graph, model, base_parallel,
                                               training, target.pp, perf_model,
                                               new_data_parallel=target.dp)
        predicted = simulate_graph(graph)

        # Validation only: emulate the target directly (what the paper does
        # by deploying the configuration on the real cluster).
        actual = emulate(model, target, training, iterations=2, seed=31)
        actual_time = actual.measured_iteration_time()
        breakdown = compute_breakdown(actual.measured)

        rows.append([
            label,
            f"{target.world_size}",
            f"{predicted.iteration_time_ms:.1f}",
            f"{actual_time / 1000:.1f}",
            f"{relative_error_percent(predicted.iteration_time_us, actual_time):+.1f}%",
            f"{breakdown.exposed_communication / 1000:.1f}",
        ])

    print("\npredicted vs actual when scaling out from 16 GPUs:")
    print(format_table(
        ["TPxPPxDP", "GPUs", "predicted_ms", "actual_ms", "error", "actual_exposed_comm_ms"],
        rows))
    best = min(rows, key=lambda row: float(row[2]))
    print(f"\nbest candidate by predicted iteration time: {best[0]} ({best[2]} ms)")


if __name__ == "__main__":
    main()
