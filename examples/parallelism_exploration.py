"""What-if exploration of parallelism strategies from a single trace.

This is the §3.4 use case the paper motivates: an engineer has one profiled
run of GPT-3 15B at TP=2, PP=2, DP=4 and wants to know how the iteration
time would change when scaling data parallelism and/or pipeline parallelism
— without deploying anything.  ``Study.predict`` manipulates the execution
graph of the existing trace and simulates each candidate (the base trace is
replayed and the perf model calibrated once, on the first prediction), and
this example also emulates the candidates directly to show the predictions
are trustworthy.

Run with ``python examples/parallelism_exploration.py``.
"""

from repro import Study
from repro.analysis.reporting import format_table
from repro.core.breakdown import compute_breakdown
from repro.core.metrics import relative_error_percent
from repro.emulator.api import emulate
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

CANDIDATES = ["2x2x8", "2x2x16", "2x4x4", "2x8x4", "2x4x8"]


def main() -> None:
    training = TrainingConfig(micro_batch_size=2, num_microbatches=4)

    print("profiling the base configuration 2x2x4 ...")
    study = Study.from_emulation("gpt3-15b", "2x2x4", training,
                                 iterations=1, seed=5)
    print(f"  base iteration time (replayed): {study.base_time_ms:.1f} ms")

    rows = []
    for label in CANDIDATES:
        prediction = study.predict(label)

        # Validation only: emulate the target directly (what the paper does
        # by deploying the configuration on the real cluster).
        target = ParallelismConfig.parse(label)
        actual = emulate(study.base_model, target, training, iterations=2, seed=31)
        actual_time = actual.measured_iteration_time()
        breakdown = compute_breakdown(actual.measured)

        rows.append([
            label,
            f"{prediction.world_size}",
            f"{prediction.iteration_time_ms:.1f}",
            f"{actual_time / 1000:.1f}",
            f"{relative_error_percent(prediction.iteration_time_us, actual_time):+.1f}%",
            f"{breakdown.exposed_communication / 1000:.1f}",
        ])

    print("\npredicted vs actual when scaling out from 16 GPUs:")
    print(format_table(
        ["TPxPPxDP", "GPUs", "predicted_ms", "actual_ms", "error", "actual_exposed_comm_ms"],
        rows))
    best = min(rows, key=lambda row: float(row[2]))
    print(f"\nbest candidate by predicted iteration time: {best[0]} ({best[2]} ms)")


if __name__ == "__main__":
    main()
