"""Model-architecture sweep from a single profiled trace (§4.3.2).

Starting from the GPT-3 15B trace, predict the per-iteration time of the
Table 2 variants (more layers, larger hidden size, larger feed-forward
size) without training any of them, then rank the variants by predicted
throughput per parameter.

Run with ``python examples/architecture_sweep.py``.
"""

from repro.analysis.reporting import format_table
from repro.core.manipulation import change_architecture
from repro.core.perf_model import KernelPerfModel
from repro.core.replay import replay, simulate_graph
from repro.emulator.api import emulate
from repro.hardware.cluster import ClusterSpec
from repro.workload.model_config import GPT3_VARIANTS, gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def main() -> None:
    base_model = gpt3_model("gpt3-15b")
    parallel = ParallelismConfig.parse("2x2x4")
    training = TrainingConfig(micro_batch_size=2, num_microbatches=4)

    print(f"profiling the base model {base_model.name} at {parallel.label()} ...")
    base = emulate(base_model, parallel, training, iterations=1, seed=9)
    base_replay = replay(base.profiled)
    cluster = ClusterSpec.for_world_size(parallel.world_size)
    perf_model = KernelPerfModel.calibrate(base_replay.graph, cluster)
    tokens = training.tokens_per_replica() * parallel.dp

    rows = [[
        base_model.name, f"{base_model.num_parameters / 1e9:.0f}B", base_model.n_layers,
        base_model.d_model, f"{base_replay.iteration_time_ms:.1f}",
        f"{tokens / (base_replay.iteration_time_us / 1e6):.0f}",
    ]]
    for name, variant in GPT3_VARIANTS.items():
        if name == "gpt3-15b":
            continue
        graph = change_architecture(base_replay.graph, base_model, parallel, training,
                                    variant, perf_model, cluster=cluster)
        predicted = simulate_graph(graph)
        rows.append([
            variant.name, f"{variant.num_parameters / 1e9:.0f}B", variant.n_layers,
            variant.d_model, f"{predicted.iteration_time_ms:.1f}",
            f"{tokens / (predicted.iteration_time_us / 1e6):.0f}",
        ])

    print("\npredicted iteration time for each architecture variant (same 16-GPU deployment):")
    print(format_table(
        ["model", "params", "layers", "hidden", "predicted_ms", "tokens_per_second"],
        rows))


if __name__ == "__main__":
    main()
