"""Model-architecture sweep from a single profiled trace (§4.3.2).

Starting from the GPT-3 15B trace, predict the per-iteration time of the
Table 2 variants (more layers, larger hidden size, larger feed-forward
size) without training any of them, then rank the variants by predicted
throughput per parameter.  One ``Study`` carries the shared state: the
base trace is replayed and the perf model calibrated exactly once, and
each variant is one ``study.predict("model:...")`` call.

Run with ``python examples/architecture_sweep.py``.
"""

from repro import Study
from repro.analysis.reporting import format_table
from repro.workload.model_config import GPT3_VARIANTS
from repro.workload.training import TrainingConfig


def main() -> None:
    training = TrainingConfig(micro_batch_size=2, num_microbatches=4)

    print("profiling the base model gpt3-15b at 2x2x4 ...")
    study = Study.from_emulation("gpt3-15b", "2x2x4", training,
                                 iterations=1, seed=9)
    base_model = study.base_model
    tokens = training.tokens_per_replica() * study.base_parallel.dp

    rows = [[
        base_model.name, f"{base_model.num_parameters / 1e9:.0f}B", base_model.n_layers,
        base_model.d_model, f"{study.base_time_ms:.1f}",
        f"{tokens / (study.base_time_us / 1e6):.0f}",
    ]]
    for name, variant in GPT3_VARIANTS.items():
        if name == "gpt3-15b":
            continue
        predicted = study.predict(f"model:{name}")
        rows.append([
            variant.name, f"{variant.num_parameters / 1e9:.0f}B", variant.n_layers,
            variant.d_model, f"{predicted.iteration_time_ms:.1f}",
            f"{tokens / (predicted.iteration_time_us / 1e6):.0f}",
        ])

    print("\npredicted iteration time for each architecture variant (same 16-GPU deployment):")
    print(format_table(
        ["model", "params", "layers", "hidden", "predicted_ms", "tokens_per_second"],
        rows))


if __name__ == "__main__":
    main()
