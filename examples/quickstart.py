"""Quickstart: profile, replay, and inspect one training iteration.

The workflow mirrors Figure 2 of the paper:

1. "collect" Kineto-style traces for one iteration of GPT-3 15B trained
   with TP=2, PP=2, DP=4 (here the cluster emulator stands in for the
   production cluster) — ``Study.from_emulation`` does this and opens the
   study over the profiled iteration;
2. build the execution graph and replay it with the Lumos simulator;
3. compare the replayed iteration time and execution breakdown against a
   later, independently measured iteration;
4. do the same with the dPRO-style baseline to see why inter-stream
   dependencies matter.

Run with ``python examples/quickstart.py``.  See ``study_api.py`` for the
rest of the facade (predict / what-if / sweep).
"""

from repro import Study
from repro.analysis.reporting import breakdown_headers, format_breakdown_row, format_table
from repro.baselines.dpro import dpro_replay
from repro.core.breakdown import compute_breakdown
from repro.core.metrics import relative_error_percent
from repro.workload.training import TrainingConfig


def main() -> None:
    study = Study.from_emulation(
        "gpt3-15b", "2x2x4",
        TrainingConfig(micro_batch_size=2, num_microbatches=4),
        iterations=2, seed=1)
    model = study.base_model
    parallel = study.base_parallel

    print(f"emulated {model.name} ({model.num_parameters / 1e9:.1f}B parameters) "
          f"with TPxPPxDP = {parallel.label()} on {parallel.world_size} GPUs")
    measured = study.emulation.measured
    actual_time_us = measured.iteration_time()

    print("\nbuilding the execution graph and replaying with Lumos ...")
    lumos = study.replay()
    counts = lumos.graph.dependency_counts()
    print(f"  graph: {len(lumos.graph)} tasks, "
          f"{sum(counts.values())} dependencies "
          f"({counts!r})")

    dpro = dpro_replay(study.trace)

    print("\nper-iteration execution time:")
    print(f"  actual : {actual_time_us / 1000:8.1f} ms")
    print(f"  Lumos  : {study.base_time_ms:8.1f} ms "
          f"({relative_error_percent(study.base_time_us, actual_time_us):+.1f}% error)")
    print(f"  dPRO   : {dpro.iteration_time_ms:8.1f} ms "
          f"({relative_error_percent(dpro.iteration_time_us, actual_time_us):+.1f}% error)")

    print("\nexecution breakdown (ms):")
    rows = [
        format_breakdown_row("actual", compute_breakdown(measured)),
        format_breakdown_row("lumos", study.breakdown()),
        format_breakdown_row("dpro", dpro.breakdown()),
    ]
    print(format_table(breakdown_headers(), rows))


if __name__ == "__main__":
    main()
