"""Fine-grained bottleneck analysis of a replayed iteration.

Beyond the end-to-end iteration time, the execution graph lets Lumos answer
diagnostic questions (§4.2): how much communication is exposed, how the SM
utilisation evolves over the iteration, and what a what-if optimisation
would buy — here, "how much faster would the iteration be if the
tensor-parallel all-reduce kernels ran 2x faster?", answered by editing
kernel durations in the graph and re-simulating (§5, "Kernel Execution Time
Prediction").

Run with ``python examples/bottleneck_analysis.py``.
"""

import numpy as np

from repro.core.breakdown import compute_breakdown
from repro.core.replay import replay, simulate_graph
from repro.core.sm_utilization import sm_utilization_timeline
from repro.core.tasks import TaskKind
from repro.emulator.api import emulate
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig


def main() -> None:
    model = gpt3_model("gpt3-44b")
    parallel = ParallelismConfig.parse("4x4x2")
    training = TrainingConfig(micro_batch_size=2, num_microbatches=4)

    print(f"emulating and replaying {model.name} at {parallel.label()} ...")
    emulation = emulate(model, parallel, training, iterations=1, seed=13)
    result = replay(emulation.profiled)
    breakdown = compute_breakdown(result.replayed_trace)

    print(f"\niteration time: {result.iteration_time_ms:.1f} ms")
    for key, value in breakdown.as_milliseconds().items():
        print(f"  {key:22s} {value:8.1f} ms")

    rank = result.replayed_trace.ranks()[0]
    utilization = sm_utilization_timeline(result.replayed_trace[rank], bin_us=1000.0)
    print(f"\nSM utilisation on rank {rank}: mean {utilization.mean():.2f}, "
          f"p10 {np.percentile(utilization, 10):.2f}, p90 {np.percentile(utilization, 90):.2f} "
          f"over {utilization.size} one-millisecond bins")

    # What-if: speed up tensor-parallel all-reduce kernels by 2x and re-simulate.
    graph = result.graph
    accelerated = 0
    for task in graph.tasks.values():
        if task.kind == TaskKind.GPU and task.args.get("group") == "tp":
            task.duration /= 2.0
            accelerated += 1
    what_if = simulate_graph(graph)
    saved = result.iteration_time_ms - what_if.iteration_time_ms
    print(f"\nwhat-if: {accelerated} tensor-parallel all-reduce kernels at 2x speed")
    print(f"  new iteration time: {what_if.iteration_time_ms:.1f} ms "
          f"({saved:.1f} ms saved, {saved / result.iteration_time_ms * 100:.1f}%)")


if __name__ == "__main__":
    main()
