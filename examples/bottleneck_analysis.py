"""Fine-grained bottleneck analysis of a replayed iteration.

Beyond the end-to-end iteration time, the execution graph lets Lumos answer
diagnostic questions (§4.2): how much communication is exposed, how the SM
utilisation evolves over the iteration, and what a what-if optimisation
would buy — here, "how much faster would the iteration be if the
tensor-parallel all-reduce kernels ran 2x faster?", answered without
touching the graph via ``study.whatif`` (§5, "Kernel Execution Time
Prediction").

Run with ``python examples/bottleneck_analysis.py``.
"""

import numpy as np

from repro import Study
from repro.core.sm_utilization import sm_utilization_timeline
from repro.core.tasks import TaskKind
from repro.workload.training import TrainingConfig


def main() -> None:
    print("emulating and replaying gpt3-44b at 4x4x2 ...")
    study = Study.from_emulation(
        "gpt3-44b", "4x4x2",
        TrainingConfig(micro_batch_size=2, num_microbatches=4),
        iterations=1, seed=13)
    result = study.replay()

    print(f"\niteration time: {study.base_time_ms:.1f} ms")
    for key, value in study.breakdown().as_milliseconds().items():
        print(f"  {key:22s} {value:8.1f} ms")

    rank = result.replayed_trace.ranks()[0]
    utilization = sm_utilization_timeline(result.replayed_trace[rank], bin_us=1000.0)
    print(f"\nSM utilisation on rank {rank}: mean {utilization.mean():.2f}, "
          f"p10 {np.percentile(utilization, 10):.2f}, p90 {np.percentile(utilization, 90):.2f} "
          f"over {utilization.size} one-millisecond bins")

    # What-if: speed up tensor-parallel all-reduce kernels by 2x.  The
    # custom predicate runs as a duration-vector swap on the study's
    # memoized session; the graph itself is never modified.
    what_if = (study.whatif()
               .scenario("tp all-reduce x2",
                         lambda task: (task.kind == TaskKind.GPU
                                       and task.args.get("group") == "tp"),
                         2.0)
               .run()[0])
    print(f"\nwhat-if: {what_if.affected_tasks} tensor-parallel all-reduce "
          "kernels at 2x speed")
    print(f"  new iteration time: {what_if.scenario_time_us / 1000:.1f} ms "
          f"({what_if.saved_us / 1000:.1f} ms saved, "
          f"{what_if.improvement_percent:.1f}%)")


if __name__ == "__main__":
    main()
