"""Sweep a whole what-if design space from one profiled trace.

Where ``examples/parallelism_exploration.py`` walks candidate configurations
one at a time, this example hands the entire design space to the sweep
engine: the base GPT-3 15B trace at TP=2, PP=2, DP=2 is replayed and
calibrated once, and 24 scenarios — parallelism scale-outs, architecture
variants and kernel-speedup hypotheticals — are evaluated from it.  The
result is a ranked table plus the Pareto frontier of iteration time versus
cluster size, and a second run is served from the on-disk cache.

Run with ``python examples/whatif_sweep.py``.
"""

import tempfile
import time
from pathlib import Path

from repro import sweep
from repro.emulator.api import emulate
from repro.sweep.analysis import format_report
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig
from repro.workload.training import TrainingConfig

SPEC = {
    "base": {"model": "gpt3-15b", "parallelism": "2x2x2",
             "micro_batch_size": 1, "num_microbatches": 2},
    "parallelism": ["2x2x4", "2x2x8", "2x1x2", "2x4x2", "2x4x4"],
    "models": ["gpt3-v1", "gpt3-v3"],
    "whatif": [
        {"kind": "kernel_class", "op_class": "gemm", "speedup": 2.0},
        {"kind": "launch_overhead"},
    ],
}


def main() -> None:
    base = SPEC["base"]
    print(f"profiling the base configuration {base['parallelism']} ...")
    result = emulate(gpt3_model(base["model"]),
                     ParallelismConfig.parse(base["parallelism"]),
                     TrainingConfig(micro_batch_size=base["micro_batch_size"],
                                    num_microbatches=base["num_microbatches"]),
                     iterations=1, seed=13)

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "sweep-cache"

        started = time.perf_counter()
        cold = sweep(result.profiled, SPEC, workers=1, cache_dir=cache_dir)
        cold_seconds = time.perf_counter() - started
        print()
        print(format_report(cold, top=10))

        started = time.perf_counter()
        warm = sweep(result.profiled, SPEC, workers=1, cache_dir=cache_dir)
        warm_seconds = time.perf_counter() - started
        print()
        print(f"repeated sweep served from cache: {cold_seconds:.2f} s -> "
              f"{warm_seconds:.2f} s ({cold_seconds / warm_seconds:.0f}x faster, "
              f"{warm.cache_stats.hits}/{len(warm)} hits)")


if __name__ == "__main__":
    main()
