"""Hardware what-ifs: shop for a GPU without renting a single one.

One emulated serving episode is profiled on H100s, replayed and
calibrated once, and then a **hardware x TP grid** is swept: every
tensor-parallel resharding of the deployment crossed with every
candidate part (H200, B200, and the A100 the cluster is migrating off).
Each hardware scenario is the paper's ratio trick pointed at a
different ``GPUSpec`` — observed duration x analytical(new part) /
analytical(old part), per kernel class — so calibration error cancels
and no candidate hardware is ever touched.

The grid is then folded into a Pareto frontier over a *cost proxy*
(GPU count x per-part price weight): the deployments worth considering
are exactly the ones no other deployment beats on both cost and
latency.

Run with ``python examples/hardware_sweep.py``.
"""

from repro import InferenceConfig, Study

#: Relative per-part cost weights (H100 = 1.0) — a stand-in for cloud
#: $/hr or procurement price; swap in real numbers to make the frontier
#: actionable.
COST_WEIGHT = {"H100-SXM": 1.0, "A100-SXM": 0.45, "H200-SXM": 1.25,
               "B200": 2.1}


def cost_proxy(world_size: int, gpu: str) -> float:
    return world_size * COST_WEIGHT[gpu]


def scenario_gpu(label: str) -> str:
    """The part a scenario ran on: ``...+gpu=<name>`` or the profiled part."""
    for piece in label.split("+"):
        if piece.startswith("gpu="):
            return piece[len("gpu="):]
    return "H100-SXM"


def pareto(rows: list[tuple[str, float, float]]) -> list[tuple[str, float, float]]:
    """The (label, cost, ms) rows not dominated on both axes."""
    frontier = []
    for row in sorted(rows, key=lambda r: (r[1], r[2])):
        if not frontier or row[2] < frontier[-1][2]:
            frontier.append(row)
    return frontier


def main() -> None:
    # 1. Profile once, on the hardware we actually have.
    inference = InferenceConfig(batch_size=8, prompt_length=512,
                                decode_length=32)
    study = Study.from_emulation("gpt3-15b", "4x1x1", inference=inference,
                                 iterations=1, seed=3)
    print(f"opened {study} (profiled on H100-SXM)")
    print(f"base episode: {study.base_time_ms:.1f} ms on "
          f"{study.base_parallel.world_size} GPUs")

    # 2. Sweep the hardware x TP grid.  The hardware axis crosses the
    #    configurations: every TP target is evaluated on the profiled
    #    part *and* retargeted to each candidate, and each retarget rides
    #    its sibling's cached derivation (a cheap roofline rescale).
    result = study.sweep(serving=["tp=2", "tp=8"],
                         hardware=["A100-SXM", "H200-SXM", "B200"])
    print(f"\nswept {len(result)} scenarios "
          f"(3 TP degrees x 4 parts, one profiled episode):")
    rows = []
    for row in result.ranked():
        gpu = scenario_gpu(row.label)
        cost = cost_proxy(row.world_size, gpu)
        rows.append((row.label, cost, row.iteration_time_ms))
        print(f"  {row.label:24s} {row.iteration_time_ms:8.1f} ms "
              f"on {row.world_size} x {gpu:8s} (cost proxy {cost:5.1f})")

    # 3. Pareto frontier over (cost proxy, latency): the short list to
    #    price out for real.
    print("\npareto frontier (no cheaper-and-faster alternative exists):")
    for label, cost, ms in pareto(rows):
        print(f"  {label:24s} {ms:8.1f} ms at cost {cost:5.1f}")


if __name__ == "__main__":
    main()
