"""Tour of the ``Study`` facade: the whole paper workflow on one object.

A :class:`repro.Study` owns everything Figure 2 shares between steps — the
base replay, the calibrated kernel perf model, and one compiled simulation
session per derived configuration — so replaying, predicting, asking
what-if questions and sweeping a design space are all method calls against
state that is computed once and memoized.

Run with ``python examples/study_api.py``.
"""

from repro import PredictError, Study
from repro.workload.training import TrainingConfig


def main() -> None:
    # 1. Profile: emulate one training job (a stand-in for profiling a real
    #    cluster) and open a study over its profiled iteration.  Nothing
    #    expensive happens yet — replay and calibration are lazy.
    study = Study.from_emulation(
        "gpt3-15b", "2x2x4",
        TrainingConfig(micro_batch_size=2, num_microbatches=4),
        iterations=2, seed=1)
    print(f"opened {study}")

    # 2. Replay: the base trace is replayed once; every later step reuses it.
    print(f"\nbase replay: {study.base_time_ms:.1f} ms "
          f"(measured: {study.emulation.measured_iteration_time() / 1000:.1f} ms)")
    for key, value in study.breakdown().as_milliseconds().items():
        print(f"  {key:22s} {value:8.1f} ms")

    # 3. Predict: scale the deployment or change the architecture.  The
    #    perf model calibrates on the first call; repeated predictions of
    #    one target are cache hits.
    print("\npredictions from the one profiled trace:")
    for target in ("2x2x8", "2x4x4"):
        prediction = study.predict(target)
        print(f"  {prediction.label:8s} ({prediction.world_size:3d} GPUs) "
              f"{prediction.iteration_time_ms:8.1f} ms "
              f"({prediction.speedup_vs_base:.2f}x vs base)")
    variant = study.predict("model:gpt3-v1")
    print(f"  {variant.label:8s} (same GPUs) {variant.iteration_time_ms:8.1f} ms")
    print(f"  calibrations performed: {study.calibrations}")

    # Unsupported targets are typed errors, not stderr strings.
    try:
        study.predict("4x2x2")
    except PredictError as error:
        print(f"  rejected 4x2x2: {error}")

    # 4. What-if: queue scenarios fluently; the batch shares one compiled
    #    session, so each scenario is a duration-vector swap.
    print("\nwhat-if scenarios against the base configuration:")
    results = (study.whatif()
               .kernel_class("gemm", 2.0)
               .communication(2.0, group="dp")
               .launch_overhead()
               .run())
    for result in results:
        print(f"  {result.name:24s} {result.scenario_time_us / 1000:8.1f} ms "
              f"({result.improvement_percent:+.1f}%)")

    # 5. Sweep: evaluate a whole grid, reusing the study's calibrated state
    #    (no second replay, no second calibration).
    sweep = study.sweep(parallelism=["2x2x8", "2x4x4"], models=["gpt3-v1"],
                        whatif=["gemm:2", "launch"])
    best = sweep.best()
    print(f"\nswept {len(sweep)} scenarios; best: {best.label} "
          f"at {best.iteration_time_ms:.1f} ms "
          f"({best.speedup_vs_base:.2f}x vs base)")
    print(f"calibrations performed in total: {study.calibrations}")


if __name__ == "__main__":
    main()
