"""Serving-scenario exploration: the paper's loop applied to LLM inference.

One emulated serving episode — a prefill over the prompt batch plus
autoregressive decode steps under tensor parallelism — is profiled,
replayed and calibrated once, and then the deployment space is explored
without running anything: continuous-batching scale-up (``batch=``),
longer prompts (``prompt=``), TP resharding (``tp=``), and decode-kernel
what-ifs.

Run with ``python examples/serving_exploration.py``.
"""

from repro import InferenceConfig, PredictError, Study


def main() -> None:
    # 1. Profile: emulate one serving episode (8 concurrent requests,
    #    512-token prompts, 64 generated tokens each) on a TP=4 deployment.
    inference = InferenceConfig(batch_size=8, prompt_length=512,
                                decode_length=64)
    study = Study.from_emulation("gpt3-15b", "4x1x1", inference=inference,
                                 iterations=2, seed=3)
    print(f"opened {study} over a {study.workload} episode")

    # 2. Replay + accounting: episode latency and the KV-cache footprint
    #    the deployment must hold in HBM.
    per_token_ms = study.base_time_ms / inference.decode_length
    print(f"\nepisode: {study.base_time_ms:.1f} ms "
          f"(~{per_token_ms:.2f} ms/token once prefill is amortised)")
    print(f"KV cache at full context: "
          f"{inference.kv_cache_gb(study.base_model, study.base_parallel):.2f} GiB "
          f"per GPU (bf16)")
    quantised = InferenceConfig(**{**inference.to_json(), "kv_dtype": "fp8"})
    print(f"  ... with an fp8 cache: "
          f"{quantised.kv_cache_gb(study.base_model, study.base_parallel):.2f} GiB")
    for key, value in study.breakdown().as_milliseconds().items():
        print(f"  {key:22s} {value:8.1f} ms")

    # 3. Predict serving targets: the graph is topology-invariant under
    #    batch/prompt/TP changes, so each target is a calibrated re-timing
    #    of the observed kernels — including TP resharding, which training
    #    manipulation cannot do.
    print("\npredictions from the one profiled episode:")
    for target in ("batch=16", "batch=32", "prompt=1024", "tp=2", "tp=8"):
        prediction = study.predict(target)
        print(f"  {prediction.label:12s} ({prediction.world_size:2d} GPUs) "
              f"{prediction.iteration_time_ms:8.1f} ms "
              f"({prediction.speedup_vs_base:.2f}x vs base)")

    # Changing the decode length changes the task-graph topology; that is
    # a typed refusal, not a wrong answer.
    try:
        study.predict("decode=128")
    except PredictError as error:
        print(f"  rejected decode=128: {error}")

    # 4. What-if: which kernel actually bounds decode?  The scenarios
    #    share one compiled session and one batched simulation.
    print("\nwhat-if scenarios against the base episode:")
    results = (study.whatif()
               .kernel_class("decode_attention", 2.0)
               .kernel_class("gemm", 2.0)
               .communication(2.0, group="tp")
               .launch_overhead()
               .run())
    for result in results:
        print(f"  {result.name:26s} {result.scenario_time_us / 1000:8.1f} ms "
              f"(saves {result.improvement_percent:4.1f}%)")

    # 5. Sweep: the full grid — serving targets x what-ifs — reusing the
    #    study's calibrated state; groups evaluate on the batched fast path.
    print("\nsweeping the deployment grid:")
    result = study.sweep(serving=["batch=16", "batch=32", "tp=2,batch=16"],
                         whatif=["decode_attention:2", "launch"])
    for row in result.ranked():
        print(f"  {row.label:36s} {row.iteration_time_ms:8.1f} ms "
              f"on {row.world_size} GPUs")


if __name__ == "__main__":
    main()
