"""Sweep-as-a-service walk-through: submit jobs over HTTP, share the cache.

Everything runs in this one process — a real stdlib HTTP server
(:class:`~repro.service.ServiceApp`) with worker threads serves a canned
emulated serving trace, and :class:`~repro.service.ServiceClient` talks
to it over the loopback exactly as a remote client would.  The walk
shows the three properties the service layer adds on top of the sweep
engine:

1. jobs are content-addressed, so identical concurrent submissions
   dedupe to a single evaluation;
2. completion is event-driven — ``GET /v1/jobs/{id}?wait=`` parks one
   request on the server until the job reaches a terminal state, so no
   client-side polling loop is needed;
3. a resubmission after completion is answered entirely from the shared
   on-disk sweep cache (``cache_hit_rate == 1.0``); and
4. refusals are typed — a bad spec is rejected at admission with a
   stable machine-readable code, not minutes later in a worker.

Run with ``python examples/service_client.py``.
"""

import tempfile
import threading
from pathlib import Path

from repro import InferenceConfig
from repro.emulator.api import emulate
from repro.service import ServiceApp, ServiceClient, ServiceError
from repro.workload.model_config import gpt3_model
from repro.workload.parallelism import ParallelismConfig


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))

    # 0. Profile once: a small emulated serving episode is the trace
    #    bundle the server will register under the name "canned".
    inference = InferenceConfig(batch_size=2, prompt_length=128,
                                decode_length=4)
    bundle = emulate(gpt3_model("gpt3-15b"), ParallelismConfig.parse("2x1x1"),
                     inference=inference, iterations=1, seed=11).profiled
    trace_dir = workdir / "serving-trace"
    bundle.save(trace_dir)

    with ServiceApp(workdir / "service", workers=2,
                    traces={"canned": trace_dir}) as app:
        client = ServiceClient(app.url)
        print(f"service up at {app.url} "
              f"(traces: {', '.join(client.health()['traces'])})")

        # 1. Two clients race to submit the *same* sweep.  The job id
        #    hashes the bundle content plus the canonical payload, so the
        #    second submission attaches to the first job instead of
        #    evaluating anything twice.
        body = {"kind": "sweep", "trace": "canned",
                "targets": ["batch=4", "batch=8"], "whatif": ["gemm:2"]}
        submissions: list[dict] = []
        lock = threading.Lock()

        def submit() -> None:
            response = client.submit(body)
            with lock:
                submissions.append(response)

        threads = [threading.Thread(target=submit) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        job_ids = {response["job"]["job_id"] for response in submissions}
        assert len(job_ids) == 1, job_ids
        job_id = job_ids.pop()
        deduped = sorted(response["deduped"] for response in submissions)
        print(f"\ntwo concurrent submissions -> one job {job_id[:12]}... "
              f"(deduped flags: {deduped})")

        # 2. Long-poll to completion and fetch the ranked result.  One
        #    request parks server-side on the job's condition variable
        #    and returns the moment the worker finishes — no polling
        #    loop, no fixed sleep interval.  (client.wait() chains these
        #    long-poll legs for arbitrarily long timeouts.)
        done = client.job(job_id, wait=60.0)
        assert done["state"] == "done", done.get("error")
        cold = client.result(job_id)["result"]
        print(f"cold run: {len(cold['scenarios'])} scenarios, "
              f"cache hit rate {cold['cache']['hit_rate']:.0%}")
        for row in cold["ranked"][:3]:
            print(f"  {row['label']:28s} "
                  f"{row['iteration_time_us'] / 1000:8.1f} ms")

        # 3. Resubmit the identical body.  The rerun re-enqueues (fresh
        #    job id semantics are content-addressed, so it is the same
        #    id) and every scenario comes back from the shared cache.
        rerun = client.submit(body)["job"]
        assert client.wait(rerun["job_id"], timeout=300.0)["state"] == "done"
        warm = client.result(rerun["job_id"])["result"]
        assert warm["cache"]["hit_rate"] == 1.0
        assert all(row["from_cache"] for row in warm["scenarios"])
        print(f"warm resubmission: cache hit rate "
              f"{warm['cache']['hit_rate']:.0%}, ranking unchanged: "
              f"{[r['label'] for r in warm['ranked']] == [r['label'] for r in cold['ranked']]}")

        # 4. Refusals are typed and happen at admission: a parallelism
        #    target needing more GPUs than the traced base never reaches
        #    a worker.
        try:
            client.submit({"kind": "sweep", "trace": "canned",
                           "targets": ["4x1x1"]})
        except ServiceError as error:
            print(f"refused as expected [{error.code}]: {error}")

        counters = client.metrics()["counters"]
        print(f"\nserver counters: "
              f"{counters.get('service.jobs.submitted', 0)} submitted, "
              f"{counters.get('service.jobs.deduped', 0)} deduped, "
              f"{counters.get('service.jobs.completed', 0)} completed")


if __name__ == "__main__":
    main()
