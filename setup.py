"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package,
so PEP 517 editable installs (which build a wheel) are unavailable.  This
shim lets ``pip install -e .`` fall back to the legacy ``setup.py develop``
path; all project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
